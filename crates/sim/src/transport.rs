//! Message delivery models.
//!
//! The bootstrapping protocol is designed for "a cheap, unreliable transport layer
//! (UDP)" (§5); the paper's robustness experiment drops every message independently
//! with probability 0.2. A [`Transport`] decides, per message, whether it is
//! delivered and with what latency. The cycle-driven engine only uses the delivery
//! decision; the event-driven engine also uses the latency.

use crate::network::NodeIndex;
use bss_util::rng::SimRng;
use std::fmt::Debug;

/// A message delivery policy.
///
/// Implementations must be deterministic given the `SimRng` stream so that whole
/// simulation runs stay reproducible.
pub trait Transport: Debug + Send {
    /// Decides whether a single message from `from` to `to` is delivered.
    fn should_deliver(&mut self, from: NodeIndex, to: NodeIndex, rng: &mut SimRng) -> bool;

    /// Latency, in milliseconds, of a delivered message from `from` to `to`.
    ///
    /// The default is a constant 1 ms, which is adequate for cycle-driven runs
    /// where latency is never consulted.
    fn latency_millis(&mut self, _from: NodeIndex, _to: NodeIndex, _rng: &mut SimRng) -> u64 {
        1
    }

    /// Number of messages this transport has been asked about.
    fn messages_offered(&self) -> u64;

    /// Number of messages this transport decided to drop.
    fn messages_dropped(&self) -> u64;

    /// Fraction of offered messages that were dropped (0 when nothing was offered).
    fn drop_rate(&self) -> f64 {
        if self.messages_offered() == 0 {
            0.0
        } else {
            self.messages_dropped() as f64 / self.messages_offered() as f64
        }
    }
}

/// A transport that delivers every message (the paper's Figure 3 setting).
#[derive(Debug, Default, Clone)]
pub struct ReliableTransport {
    offered: u64,
}

impl ReliableTransport {
    /// Creates a reliable transport.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transport for ReliableTransport {
    fn should_deliver(&mut self, _from: NodeIndex, _to: NodeIndex, _rng: &mut SimRng) -> bool {
        self.offered += 1;
        true
    }

    fn messages_offered(&self) -> u64 {
        self.offered
    }

    fn messages_dropped(&self) -> u64 {
        0
    }
}

/// A transport that drops each message independently with a fixed probability
/// (the paper's Figure 4 setting uses probability 0.2).
///
/// Because the protocol is built from request/response pairs, dropping a request
/// also suppresses its response; the paper computes the resulting effective loss as
/// `1 - 0.8 * 0.9 ≈ 0.28` for a drop probability of 0.2. That compounding happens
/// naturally in the engine — this type only implements the per-message coin flip.
#[derive(Debug, Clone)]
pub struct DropTransport {
    drop_probability: f64,
    offered: u64,
    dropped: u64,
}

impl DropTransport {
    /// Creates a transport that drops messages with probability `drop_probability`
    /// (clamped to `[0, 1]`).
    pub fn new(drop_probability: f64) -> Self {
        DropTransport {
            drop_probability: drop_probability.clamp(0.0, 1.0),
            offered: 0,
            dropped: 0,
        }
    }

    /// The configured drop probability.
    pub fn drop_probability(&self) -> f64 {
        self.drop_probability
    }
}

impl Transport for DropTransport {
    fn should_deliver(&mut self, _from: NodeIndex, _to: NodeIndex, rng: &mut SimRng) -> bool {
        self.offered += 1;
        if rng.chance(self.drop_probability) {
            self.dropped += 1;
            false
        } else {
            true
        }
    }

    fn messages_offered(&self) -> u64 {
        self.offered
    }

    fn messages_dropped(&self) -> u64 {
        self.dropped
    }
}

/// A transport that partitions the network into groups and drops every message
/// crossing a partition boundary. Used by the merge/split scenario experiments:
/// while the partition is in force the sub-networks evolve independently; removing
/// it merges them.
#[derive(Debug, Clone)]
pub struct PartitionTransport {
    group_of: Vec<u32>,
    active: bool,
    offered: u64,
    dropped: u64,
}

impl PartitionTransport {
    /// Creates a partition transport; `group_of[i]` is the partition group of the
    /// node with index `i`. Nodes whose index is out of range of the vector are
    /// treated as belonging to group 0.
    pub fn new(group_of: Vec<u32>) -> Self {
        PartitionTransport {
            group_of,
            active: true,
            offered: 0,
            dropped: 0,
        }
    }

    /// Enables or disables the partition. While disabled, the transport behaves
    /// like [`ReliableTransport`].
    pub fn set_active(&mut self, active: bool) {
        self.active = active;
    }

    /// Whether the partition is currently enforced.
    pub fn is_active(&self) -> bool {
        self.active
    }

    fn group(&self, node: NodeIndex) -> u32 {
        self.group_of.get(node.as_usize()).copied().unwrap_or(0)
    }
}

impl Transport for PartitionTransport {
    fn should_deliver(&mut self, from: NodeIndex, to: NodeIndex, _rng: &mut SimRng) -> bool {
        self.offered += 1;
        if self.active && self.group(from) != self.group(to) {
            self.dropped += 1;
            false
        } else {
            true
        }
    }

    fn messages_offered(&self) -> u64 {
        self.offered
    }

    fn messages_dropped(&self) -> u64 {
        self.dropped
    }
}

/// A latency model layered over any delivery policy, for the event-driven engine:
/// uniformly random latency in `[min_millis, max_millis]`.
#[derive(Debug, Clone)]
pub struct UniformLatencyTransport<T> {
    inner: T,
    min_millis: u64,
    max_millis: u64,
}

impl<T: Transport> UniformLatencyTransport<T> {
    /// Wraps `inner`, adding uniformly distributed latency.
    ///
    /// # Panics
    ///
    /// Panics if `min_millis > max_millis`.
    pub fn new(inner: T, min_millis: u64, max_millis: u64) -> Self {
        assert!(min_millis <= max_millis, "latency range is inverted");
        UniformLatencyTransport {
            inner,
            min_millis,
            max_millis,
        }
    }

    /// Returns the wrapped transport.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Transport> Transport for UniformLatencyTransport<T> {
    fn should_deliver(&mut self, from: NodeIndex, to: NodeIndex, rng: &mut SimRng) -> bool {
        self.inner.should_deliver(from, to, rng)
    }

    fn latency_millis(&mut self, _from: NodeIndex, _to: NodeIndex, rng: &mut SimRng) -> u64 {
        if self.min_millis == self.max_millis {
            self.min_millis
        } else {
            rng.range_u64(self.min_millis, self.max_millis + 1)
        }
    }

    fn messages_offered(&self) -> u64 {
        self.inner.messages_offered()
    }

    fn messages_dropped(&self) -> u64 {
        self.inner.messages_dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(i: u32) -> NodeIndex {
        NodeIndex::new(i)
    }

    #[test]
    fn reliable_transport_never_drops() {
        let mut rng = SimRng::seed_from(1);
        let mut t = ReliableTransport::new();
        for i in 0..100 {
            assert!(t.should_deliver(idx(i), idx(i + 1), &mut rng));
        }
        assert_eq!(t.messages_offered(), 100);
        assert_eq!(t.messages_dropped(), 0);
        assert_eq!(t.drop_rate(), 0.0);
        assert_eq!(t.latency_millis(idx(0), idx(1), &mut rng), 1);
    }

    #[test]
    fn drop_transport_matches_configured_probability() {
        let mut rng = SimRng::seed_from(2);
        let mut t = DropTransport::new(0.2);
        assert_eq!(t.drop_probability(), 0.2);
        let delivered = (0..20_000)
            .filter(|_| t.should_deliver(idx(0), idx(1), &mut rng))
            .count();
        let rate = 1.0 - delivered as f64 / 20_000.0;
        assert!((rate - 0.2).abs() < 0.02, "observed drop rate {rate}");
        assert!((t.drop_rate() - 0.2).abs() < 0.02);
        assert_eq!(t.messages_offered(), 20_000);
    }

    #[test]
    fn drop_transport_extremes() {
        let mut rng = SimRng::seed_from(3);
        let mut never = DropTransport::new(0.0);
        let mut always = DropTransport::new(1.0);
        let mut clamped = DropTransport::new(7.5);
        for _ in 0..50 {
            assert!(never.should_deliver(idx(0), idx(1), &mut rng));
            assert!(!always.should_deliver(idx(0), idx(1), &mut rng));
            assert!(!clamped.should_deliver(idx(0), idx(1), &mut rng));
        }
        assert_eq!(clamped.drop_probability(), 1.0);
    }

    #[test]
    fn partition_transport_blocks_cross_group_traffic() {
        let mut rng = SimRng::seed_from(4);
        let mut t = PartitionTransport::new(vec![0, 0, 1, 1]);
        assert!(t.is_active());
        assert!(t.should_deliver(idx(0), idx(1), &mut rng));
        assert!(!t.should_deliver(idx(0), idx(2), &mut rng));
        assert!(t.should_deliver(idx(2), idx(3), &mut rng));
        assert_eq!(t.messages_dropped(), 1);

        // Healing the partition merges the groups.
        t.set_active(false);
        assert!(t.should_deliver(idx(0), idx(2), &mut rng));
        assert!(!t.is_active());
    }

    #[test]
    fn partition_transport_defaults_unknown_nodes_to_group_zero() {
        let mut rng = SimRng::seed_from(5);
        let mut t = PartitionTransport::new(vec![1]);
        // Node 5 is out of range -> group 0, node 0 is group 1.
        assert!(!t.should_deliver(idx(0), idx(5), &mut rng));
        assert!(t.should_deliver(idx(5), idx(6), &mut rng));
    }

    #[test]
    fn uniform_latency_stays_in_range() {
        let mut rng = SimRng::seed_from(6);
        let mut t = UniformLatencyTransport::new(ReliableTransport::new(), 10, 50);
        for _ in 0..500 {
            let l = t.latency_millis(idx(0), idx(1), &mut rng);
            assert!((10..=50).contains(&l));
        }
        assert!(t.should_deliver(idx(0), idx(1), &mut rng));
        assert_eq!(t.messages_offered(), 1);
        let mut fixed = UniformLatencyTransport::new(ReliableTransport::new(), 5, 5);
        assert_eq!(fixed.latency_millis(idx(0), idx(1), &mut rng), 5);
        let _inner: ReliableTransport = fixed.into_inner();
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn uniform_latency_rejects_inverted_range() {
        UniformLatencyTransport::new(ReliableTransport::new(), 10, 5);
    }

    #[test]
    fn latency_wrapper_preserves_drop_statistics() {
        let mut rng = SimRng::seed_from(7);
        let mut t = UniformLatencyTransport::new(DropTransport::new(1.0), 1, 2);
        assert!(!t.should_deliver(idx(0), idx(1), &mut rng));
        assert_eq!(t.messages_dropped(), 1);
        assert_eq!(t.drop_rate(), 1.0);
    }
}
