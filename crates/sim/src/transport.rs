//! Message delivery models.
//!
//! The bootstrapping protocol is designed for "a cheap, unreliable transport layer
//! (UDP)" (§5); the paper's robustness experiment drops every message independently
//! with probability 0.2. A [`Transport`] decides, per message, whether it is
//! delivered and with what latency. The cycle-driven engine only uses the delivery
//! decision; the event-driven engine also uses the latency.

use crate::network::NodeIndex;
use bss_util::rng::SimRng;
use std::fmt::Debug;

/// A message delivery policy.
///
/// Implementations must be deterministic given the `SimRng` stream so that whole
/// simulation runs stay reproducible.
pub trait Transport: Debug + Send {
    /// Decides whether a single message from `from` to `to` is delivered.
    fn should_deliver(&mut self, from: NodeIndex, to: NodeIndex, rng: &mut SimRng) -> bool;

    /// Advances the transport's notion of simulation time to `cycle`. The
    /// engines call this at every cycle boundary (the event-driven runner maps
    /// wall-clock time to cycles through Δ). Most transports are
    /// time-invariant, so the default is a no-op; [`TimelineTransport`] uses
    /// it to activate and deactivate its scheduled windows.
    fn advance_to_cycle(&mut self, _cycle: u64) {}

    /// Latency, in milliseconds, of a delivered message from `from` to `to`.
    ///
    /// The default is a constant 1 ms, which is adequate for cycle-driven runs
    /// where latency is never consulted.
    fn latency_millis(&mut self, _from: NodeIndex, _to: NodeIndex, _rng: &mut SimRng) -> u64 {
        1
    }

    /// Number of messages this transport has been asked about.
    fn messages_offered(&self) -> u64;

    /// Number of messages this transport decided to drop.
    fn messages_dropped(&self) -> u64;

    /// Fraction of offered messages that were dropped (0 when nothing was offered).
    fn drop_rate(&self) -> f64 {
        if self.messages_offered() == 0 {
            0.0
        } else {
            self.messages_dropped() as f64 / self.messages_offered() as f64
        }
    }
}

/// A transport that delivers every message (the paper's Figure 3 setting).
#[derive(Debug, Default, Clone)]
pub struct ReliableTransport {
    offered: u64,
}

impl ReliableTransport {
    /// Creates a reliable transport.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transport for ReliableTransport {
    fn should_deliver(&mut self, _from: NodeIndex, _to: NodeIndex, _rng: &mut SimRng) -> bool {
        self.offered += 1;
        true
    }

    fn messages_offered(&self) -> u64 {
        self.offered
    }

    fn messages_dropped(&self) -> u64 {
        0
    }
}

/// A transport that drops each message independently with a fixed probability
/// (the paper's Figure 4 setting uses probability 0.2).
///
/// Because the protocol is built from request/response pairs, dropping a request
/// also suppresses its response; the paper computes the resulting effective loss as
/// `1 - 0.8 * 0.9 ≈ 0.28` for a drop probability of 0.2. That compounding happens
/// naturally in the engine — this type only implements the per-message coin flip.
#[derive(Debug, Clone)]
pub struct DropTransport {
    drop_probability: f64,
    offered: u64,
    dropped: u64,
}

impl DropTransport {
    /// Creates a transport that drops messages with probability `drop_probability`
    /// (clamped to `[0, 1]`).
    pub fn new(drop_probability: f64) -> Self {
        DropTransport {
            drop_probability: drop_probability.clamp(0.0, 1.0),
            offered: 0,
            dropped: 0,
        }
    }

    /// The configured drop probability.
    pub fn drop_probability(&self) -> f64 {
        self.drop_probability
    }
}

impl Transport for DropTransport {
    fn should_deliver(&mut self, _from: NodeIndex, _to: NodeIndex, rng: &mut SimRng) -> bool {
        self.offered += 1;
        if rng.chance(self.drop_probability) {
            self.dropped += 1;
            false
        } else {
            true
        }
    }

    fn messages_offered(&self) -> u64 {
        self.offered
    }

    fn messages_dropped(&self) -> u64 {
        self.dropped
    }
}

/// A transport that partitions the network into groups and drops every message
/// crossing a partition boundary. Used by the merge/split scenario experiments:
/// while the partition is in force the sub-networks evolve independently; removing
/// it merges them.
#[derive(Debug, Clone)]
pub struct PartitionTransport {
    group_of: Vec<u32>,
    active: bool,
    offered: u64,
    dropped: u64,
}

impl PartitionTransport {
    /// Creates a partition transport; `group_of[i]` is the partition group of the
    /// node with index `i`. Nodes whose index is out of range of the vector are
    /// treated as belonging to group 0.
    pub fn new(group_of: Vec<u32>) -> Self {
        PartitionTransport {
            group_of,
            active: true,
            offered: 0,
            dropped: 0,
        }
    }

    /// Enables or disables the partition. While disabled, the transport behaves
    /// like [`ReliableTransport`].
    pub fn set_active(&mut self, active: bool) {
        self.active = active;
    }

    /// Whether the partition is currently enforced.
    pub fn is_active(&self) -> bool {
        self.active
    }

    fn group(&self, node: NodeIndex) -> u32 {
        self.group_of.get(node.as_usize()).copied().unwrap_or(0)
    }
}

impl Transport for PartitionTransport {
    fn should_deliver(&mut self, from: NodeIndex, to: NodeIndex, _rng: &mut SimRng) -> bool {
        self.offered += 1;
        if self.active && self.group(from) != self.group(to) {
            self.dropped += 1;
            false
        } else {
            true
        }
    }

    fn messages_offered(&self) -> u64 {
        self.offered
    }

    fn messages_dropped(&self) -> u64 {
        self.dropped
    }
}

/// A transport whose behaviour follows a scripted timeline of cycle windows:
/// message-loss windows (each with its own drop probability) and partition
/// windows (each with its own group map), all expressed as `[start, end)`
/// cycle intervals. Outside every window the transport is reliable.
///
/// This is the runtime form of a scenario timeline: the engines call
/// [`Transport::advance_to_cycle`] at every cycle boundary and the transport
/// switches behaviour accordingly. A whole-run loss window draws exactly the
/// same RNG stream as [`DropTransport`], and a run with no windows draws none
/// (like [`ReliableTransport`]), which is what keeps the scenario layer's
/// compatibility path byte-identical to the legacy scalar-knob configuration.
#[derive(Debug, Clone, Default)]
pub struct TimelineTransport {
    /// `(start, end, probability)` loss windows, `[start, end)` in cycles.
    loss_windows: Vec<(u64, u64, f64)>,
    /// `(start, end, group map)` partition windows, `[start, end)` in cycles.
    partition_windows: Vec<(u64, u64, Vec<u32>)>,
    cycle: u64,
    offered: u64,
    dropped: u64,
}

impl TimelineTransport {
    /// Creates a transport with an empty timeline (fully reliable).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a loss window: every message offered while the current cycle lies
    /// in `[start, end)` is dropped independently with `probability` (clamped
    /// to `[0, 1]`; validation of out-of-range inputs happens at the scenario
    /// layer). Builder style.
    #[must_use]
    pub fn with_loss_window(mut self, start: u64, end: u64, probability: f64) -> Self {
        self.loss_windows
            .push((start, end, probability.clamp(0.0, 1.0)));
        self
    }

    /// Adds a partition window: while the current cycle lies in `[start, end)`
    /// every message crossing a group boundary is dropped. `group_of[i]` is the
    /// partition group of node index `i`; out-of-range indices belong to group
    /// 0 (so later joiners land in group 0). Builder style.
    #[must_use]
    pub fn with_partition_window(mut self, start: u64, end: u64, group_of: Vec<u32>) -> Self {
        self.partition_windows.push((start, end, group_of));
        self
    }

    /// The currently active loss probability (0 outside every loss window).
    pub fn active_loss(&self) -> f64 {
        self.loss_windows
            .iter()
            .find(|&&(start, end, _)| self.cycle >= start && self.cycle < end)
            .map_or(0.0, |&(_, _, p)| p)
    }

    /// Whether a partition window is active at the current cycle.
    pub fn partition_active(&self) -> bool {
        self.partition_windows
            .iter()
            .any(|&(start, end, _)| self.cycle >= start && self.cycle < end)
    }

    fn crosses_partition(&self, from: NodeIndex, to: NodeIndex) -> bool {
        self.partition_windows
            .iter()
            .filter(|&&(start, end, _)| self.cycle >= start && self.cycle < end)
            .any(|(_, _, group_of)| {
                let group = |node: NodeIndex| group_of.get(node.as_usize()).copied().unwrap_or(0);
                group(from) != group(to)
            })
    }
}

impl Transport for TimelineTransport {
    fn should_deliver(&mut self, from: NodeIndex, to: NodeIndex, rng: &mut SimRng) -> bool {
        self.offered += 1;
        // Partition decisions are deterministic (no RNG), exactly like
        // PartitionTransport, so healing a partition never shifts the stream.
        if self.crosses_partition(from, to) {
            self.dropped += 1;
            return false;
        }
        // The loss coin is only flipped while a window with positive
        // probability is active — a quiet timeline consumes no randomness.
        let probability = self.active_loss();
        if probability > 0.0 && rng.chance(probability) {
            self.dropped += 1;
            return false;
        }
        true
    }

    fn advance_to_cycle(&mut self, cycle: u64) {
        self.cycle = cycle;
    }

    fn messages_offered(&self) -> u64 {
        self.offered
    }

    fn messages_dropped(&self) -> u64 {
        self.dropped
    }
}

/// A latency model layered over any delivery policy, for the event-driven engine:
/// uniformly random latency in `[min_millis, max_millis]`.
#[derive(Debug, Clone)]
pub struct UniformLatencyTransport<T> {
    inner: T,
    min_millis: u64,
    max_millis: u64,
}

impl<T: Transport> UniformLatencyTransport<T> {
    /// Wraps `inner`, adding uniformly distributed latency.
    ///
    /// # Panics
    ///
    /// Panics if `min_millis > max_millis`.
    pub fn new(inner: T, min_millis: u64, max_millis: u64) -> Self {
        assert!(min_millis <= max_millis, "latency range is inverted");
        UniformLatencyTransport {
            inner,
            min_millis,
            max_millis,
        }
    }

    /// Returns the wrapped transport.
    pub fn into_inner(self) -> T {
        self.inner
    }
}

impl<T: Transport> Transport for UniformLatencyTransport<T> {
    fn should_deliver(&mut self, from: NodeIndex, to: NodeIndex, rng: &mut SimRng) -> bool {
        self.inner.should_deliver(from, to, rng)
    }

    fn advance_to_cycle(&mut self, cycle: u64) {
        self.inner.advance_to_cycle(cycle);
    }

    fn latency_millis(&mut self, _from: NodeIndex, _to: NodeIndex, rng: &mut SimRng) -> u64 {
        if self.min_millis == self.max_millis {
            self.min_millis
        } else {
            rng.range_u64(self.min_millis, self.max_millis + 1)
        }
    }

    fn messages_offered(&self) -> u64 {
        self.inner.messages_offered()
    }

    fn messages_dropped(&self) -> u64 {
        self.inner.messages_dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(i: u32) -> NodeIndex {
        NodeIndex::new(i)
    }

    #[test]
    fn reliable_transport_never_drops() {
        let mut rng = SimRng::seed_from(1);
        let mut t = ReliableTransport::new();
        for i in 0..100 {
            assert!(t.should_deliver(idx(i), idx(i + 1), &mut rng));
        }
        assert_eq!(t.messages_offered(), 100);
        assert_eq!(t.messages_dropped(), 0);
        assert_eq!(t.drop_rate(), 0.0);
        assert_eq!(t.latency_millis(idx(0), idx(1), &mut rng), 1);
    }

    #[test]
    fn drop_transport_matches_configured_probability() {
        let mut rng = SimRng::seed_from(2);
        let mut t = DropTransport::new(0.2);
        assert_eq!(t.drop_probability(), 0.2);
        let delivered = (0..20_000)
            .filter(|_| t.should_deliver(idx(0), idx(1), &mut rng))
            .count();
        let rate = 1.0 - delivered as f64 / 20_000.0;
        assert!((rate - 0.2).abs() < 0.02, "observed drop rate {rate}");
        assert!((t.drop_rate() - 0.2).abs() < 0.02);
        assert_eq!(t.messages_offered(), 20_000);
    }

    #[test]
    fn drop_transport_extremes() {
        let mut rng = SimRng::seed_from(3);
        let mut never = DropTransport::new(0.0);
        let mut always = DropTransport::new(1.0);
        let mut clamped = DropTransport::new(7.5);
        for _ in 0..50 {
            assert!(never.should_deliver(idx(0), idx(1), &mut rng));
            assert!(!always.should_deliver(idx(0), idx(1), &mut rng));
            assert!(!clamped.should_deliver(idx(0), idx(1), &mut rng));
        }
        assert_eq!(clamped.drop_probability(), 1.0);
    }

    #[test]
    fn partition_transport_blocks_cross_group_traffic() {
        let mut rng = SimRng::seed_from(4);
        let mut t = PartitionTransport::new(vec![0, 0, 1, 1]);
        assert!(t.is_active());
        assert!(t.should_deliver(idx(0), idx(1), &mut rng));
        assert!(!t.should_deliver(idx(0), idx(2), &mut rng));
        assert!(t.should_deliver(idx(2), idx(3), &mut rng));
        assert_eq!(t.messages_dropped(), 1);

        // Healing the partition merges the groups.
        t.set_active(false);
        assert!(t.should_deliver(idx(0), idx(2), &mut rng));
        assert!(!t.is_active());
    }

    #[test]
    fn partition_transport_defaults_unknown_nodes_to_group_zero() {
        let mut rng = SimRng::seed_from(5);
        let mut t = PartitionTransport::new(vec![1]);
        // Node 5 is out of range -> group 0, node 0 is group 1.
        assert!(!t.should_deliver(idx(0), idx(5), &mut rng));
        assert!(t.should_deliver(idx(5), idx(6), &mut rng));
    }

    #[test]
    fn uniform_latency_stays_in_range() {
        let mut rng = SimRng::seed_from(6);
        let mut t = UniformLatencyTransport::new(ReliableTransport::new(), 10, 50);
        for _ in 0..500 {
            let l = t.latency_millis(idx(0), idx(1), &mut rng);
            assert!((10..=50).contains(&l));
        }
        assert!(t.should_deliver(idx(0), idx(1), &mut rng));
        assert_eq!(t.messages_offered(), 1);
        let mut fixed = UniformLatencyTransport::new(ReliableTransport::new(), 5, 5);
        assert_eq!(fixed.latency_millis(idx(0), idx(1), &mut rng), 5);
        let _inner: ReliableTransport = fixed.into_inner();
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn uniform_latency_rejects_inverted_range() {
        UniformLatencyTransport::new(ReliableTransport::new(), 10, 5);
    }

    #[test]
    fn timeline_transport_follows_its_loss_windows() {
        let mut t = TimelineTransport::new().with_loss_window(2, 4, 1.0);
        let mut rng = SimRng::seed_from(8);
        // Before the window: reliable, and no RNG is consumed.
        let fingerprint = rng.clone();
        assert!(t.should_deliver(idx(0), idx(1), &mut rng));
        assert_eq!(rng, fingerprint, "quiet timeline must not draw randomness");
        // Inside the window: certain loss.
        t.advance_to_cycle(2);
        assert_eq!(t.active_loss(), 1.0);
        assert!(!t.should_deliver(idx(0), idx(1), &mut rng));
        t.advance_to_cycle(3);
        assert!(!t.should_deliver(idx(0), idx(1), &mut rng));
        // The window end is exclusive.
        t.advance_to_cycle(4);
        assert_eq!(t.active_loss(), 0.0);
        assert!(t.should_deliver(idx(0), idx(1), &mut rng));
        assert_eq!(t.messages_offered(), 4);
        assert_eq!(t.messages_dropped(), 2);
    }

    #[test]
    fn timeline_transport_matches_drop_transport_rng_stream() {
        // A whole-run loss window must flip exactly the coins DropTransport
        // flips — this is what keeps the scenario compatibility path
        // byte-identical to the legacy drop_probability knob.
        let mut timeline = TimelineTransport::new().with_loss_window(0, u64::MAX, 0.3);
        let mut legacy = DropTransport::new(0.3);
        let mut rng_a = SimRng::seed_from(9);
        let mut rng_b = SimRng::seed_from(9);
        for message in 0..500 {
            timeline.advance_to_cycle(message / 10);
            assert_eq!(
                timeline.should_deliver(idx(0), idx(1), &mut rng_a),
                legacy.should_deliver(idx(0), idx(1), &mut rng_b),
            );
        }
        assert_eq!(rng_a, rng_b, "both transports must consume the same stream");
        assert_eq!(timeline.messages_dropped(), legacy.messages_dropped());
    }

    #[test]
    fn timeline_transport_partitions_and_heals() {
        let mut t = TimelineTransport::new().with_partition_window(0, 5, vec![0, 0, 1, 1]);
        let mut rng = SimRng::seed_from(10);
        assert!(t.partition_active());
        assert!(t.should_deliver(idx(0), idx(1), &mut rng));
        assert!(!t.should_deliver(idx(0), idx(2), &mut rng));
        // Unknown indices (later joiners) default to group 0.
        assert!(t.should_deliver(idx(0), idx(9), &mut rng));
        assert!(!t.should_deliver(idx(2), idx(9), &mut rng));
        // The partition heals at its end cycle: the network merges.
        t.advance_to_cycle(5);
        assert!(!t.partition_active());
        assert!(t.should_deliver(idx(0), idx(2), &mut rng));
        assert_eq!(t.messages_dropped(), 2);
    }

    #[test]
    fn latency_wrapper_forwards_the_clock() {
        let mut t = UniformLatencyTransport::new(
            TimelineTransport::new().with_loss_window(1, 2, 1.0),
            1,
            1,
        );
        let mut rng = SimRng::seed_from(11);
        assert!(t.should_deliver(idx(0), idx(1), &mut rng));
        t.advance_to_cycle(1);
        assert!(!t.should_deliver(idx(0), idx(1), &mut rng));
    }

    #[test]
    fn latency_wrapper_preserves_drop_statistics() {
        let mut rng = SimRng::seed_from(7);
        let mut t = UniformLatencyTransport::new(DropTransport::new(1.0), 1, 2);
        assert!(!t.should_deliver(idx(0), idx(1), &mut rng));
        assert_eq!(t.messages_dropped(), 1);
        assert_eq!(t.drop_rate(), 1.0);
    }
}
