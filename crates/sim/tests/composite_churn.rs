//! Property tests for [`CompositeChurn`] ordering and the non-aliasing
//! guarantee of [`ChurnEvents`].
//!
//! A scenario timeline can compose continuous replacement churn with one-shot
//! catastrophic failures and massive joins in any order. Whatever the
//! composition, the aggregated per-cycle events must:
//!
//! * apply the composed models in timeline order within each cycle (observable
//!   as strictly increasing joiner indices — the registry appends);
//! * never report a node as both joined and departed in the same cycle, and
//!   never hand a joiner a recycled (previously used) slot;
//! * keep the registry's alive/dead bookkeeping consistent with the reported
//!   lists, with one-shots firing exactly once at their scheduled cycle.

use bss_sim::churn::{
    ByzantineConversion, CatastrophicFailure, ChurnModel, CompositeChurn, MassiveJoin,
    UniformChurn, WindowedChurn,
};
use bss_sim::network::{Network, NodeIndex};
use bss_util::rng::SimRng;
use proptest::prelude::*;
use std::collections::HashSet;

/// A generatable description of one composed churn model.
#[derive(Debug, Clone)]
enum Spec {
    Uniform {
        rate_permille: u32,
    },
    Burst {
        rate_permille: u32,
        start: u64,
        len: u64,
    },
    Failure {
        at: u64,
        percent: u32,
    },
    Join {
        at: u64,
        count: usize,
    },
    Convert {
        at: u64,
        percent: u32,
    },
}

impl Spec {
    fn build(&self) -> Box<dyn ChurnModel> {
        match *self {
            Spec::Uniform { rate_permille } => {
                Box::new(UniformChurn::new(f64::from(rate_permille) / 1000.0))
            }
            Spec::Burst {
                rate_permille,
                start,
                len,
            } => Box::new(WindowedChurn::new(
                start,
                start + len,
                UniformChurn::new(f64::from(rate_permille) / 1000.0),
            )),
            Spec::Failure { at, percent } => {
                Box::new(CatastrophicFailure::new(at, f64::from(percent) / 100.0))
            }
            Spec::Join { at, count } => Box::new(MassiveJoin::new(at, count)),
            Spec::Convert { at, percent } => {
                Box::new(ByzantineConversion::new(at, f64::from(percent) / 100.0))
            }
        }
    }
}

fn spec_strategy(cycles: u64) -> impl Strategy<Value = Spec> {
    (0u8..5, 0u32..300, 0..cycles, 1..cycles, 1usize..40).prop_map(
        |(kind, rate, at, len, count)| match kind {
            0 => Spec::Uniform {
                rate_permille: rate % 120,
            },
            1 => Spec::Burst {
                rate_permille: rate,
                start: at,
                len,
            },
            2 => Spec::Failure {
                at,
                percent: rate % 70,
            },
            3 => Spec::Convert {
                at,
                percent: rate % 70,
            },
            _ => Spec::Join { at, count },
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary compositions of UniformChurn (bare and windowed),
    /// CatastrophicFailure and MassiveJoin, applied over several cycles.
    #[test]
    fn composite_preserves_order_and_never_aliases_slots(
        specs in prop::collection::vec(spec_strategy(12), 1..5),
        size in 30usize..150,
        seed in any::<u64>(),
    ) {
        let cycles = 12u64;
        let mut rng = SimRng::seed_from(seed);
        let mut network = Network::with_random_ids(size, &mut rng);
        let mut composite = CompositeChurn::new();
        for spec in &specs {
            composite = composite.with(spec.build());
        }
        prop_assert_eq!(composite.len(), specs.len());

        let mut ever_joined: HashSet<NodeIndex> = HashSet::new();
        for cycle in 0..cycles {
            let len_before = network.len();
            let alive_before = network.alive_count();
            let events = composite.apply(cycle, &mut network, &mut rng);

            // --- Non-aliasing: joiners and victims never share a slot. ---
            let departed: HashSet<NodeIndex> = events.departed.iter().copied().collect();
            prop_assert_eq!(departed.len(), events.departed.len(), "duplicate victims");
            for &joiner in &events.joined {
                prop_assert!(
                    !departed.contains(&joiner),
                    "cycle {}: {:?} reported as both joined and departed",
                    cycle,
                    joiner
                );
                // Fresh slot: at or above the pre-cycle registry watermark,
                // and never a slot that was ever used before.
                prop_assert!(joiner.as_usize() >= len_before, "recycled slot");
                prop_assert!(ever_joined.insert(joiner), "slot joined twice");
                prop_assert!(network.is_alive(joiner), "reported joiner is dead");
            }

            // --- Conversions never double-count a node: a converted node is
            // alive (a same-cycle kill removes it from the list), pre-dates
            // the cycle (a same-cycle joiner is never converted), and appears
            // at most once. ---
            let converted: HashSet<NodeIndex> = events.converted.iter().copied().collect();
            prop_assert_eq!(converted.len(), events.converted.len(), "duplicate converts");
            for &node in &events.converted {
                prop_assert!(
                    !departed.contains(&node),
                    "cycle {}: {:?} reported as both converted and departed",
                    cycle,
                    node
                );
                prop_assert!(network.is_alive(node), "converted node is dead");
                prop_assert!(
                    node.as_usize() < len_before,
                    "cycle {}: converted a node that joined this cycle",
                    cycle
                );
            }

            // --- Ordering: models apply in composition order, so the
            // append-only registry hands out strictly increasing indices. ---
            prop_assert!(
                events
                    .joined
                    .windows(2)
                    .all(|pair| pair[0].as_usize() < pair[1].as_usize()),
                "cycle {}: joiners out of composition order: {:?}",
                cycle,
                events.joined
            );

            // --- Bookkeeping: the reported lists explain the registry delta.
            // (Intra-cycle joiners killed by a later model appear in neither
            // list; they occupy dead slots above the watermark.) ---
            for &victim in &events.departed {
                prop_assert!(victim.as_usize() < len_before, "victim must pre-date the cycle");
                prop_assert!(!network.is_alive(victim));
            }
            let silently_dead =
                (network.len() - len_before).saturating_sub(events.joined.len());
            prop_assert_eq!(
                network.alive_count(),
                alive_before - events.departed.len() + events.joined.len(),
                "cycle {}: alive count out of sync (silently dead intra-cycle joiners: {})",
                cycle,
                silently_dead
            );
        }

        // One-shots fired exactly once: a second pass over later cycles adds
        // no joiners from Join specs whose cycle already passed.
        let replay = composite.apply(cycles + 1, &mut network, &mut rng);
        for &joiner in &replay.joined {
            prop_assert!(ever_joined.insert(joiner));
        }
    }

    /// A join and a failure scheduled for the same cycle: whichever order they
    /// are composed in, the guarantee holds — and when the failure comes
    /// second, joiners it kills are reported in neither list.
    #[test]
    fn same_cycle_join_and_failure_reconcile(
        join_first in any::<bool>(),
        size in 20usize..80,
        count in 5usize..40,
        percent in 10u32..70,
        seed in any::<u64>(),
    ) {
        let mut rng = SimRng::seed_from(seed);
        let mut network = Network::with_random_ids(size, &mut rng);
        let join = Box::new(MassiveJoin::new(3, count));
        let failure = Box::new(CatastrophicFailure::new(3, f64::from(percent) / 100.0));
        let mut composite = if join_first {
            CompositeChurn::new().with(join).with(failure)
        } else {
            CompositeChurn::new().with(failure).with(join)
        };
        for cycle in 0..3 {
            prop_assert!(composite.apply(cycle, &mut network, &mut rng).is_empty());
        }
        let len_before = network.len();
        let events = composite.apply(3, &mut network, &mut rng);
        let departed: HashSet<NodeIndex> = events.departed.iter().copied().collect();
        for &joiner in &events.joined {
            prop_assert!(!departed.contains(&joiner));
            prop_assert!(network.is_alive(joiner));
            prop_assert!(joiner.as_usize() >= len_before);
        }
        if join_first {
            // Some joiners may have been killed and silenced; the survivors
            // plus the silenced ones account for the whole batch.
            prop_assert!(events.joined.len() <= count);
        } else {
            // The failure fired before the join, so every joiner survived.
            prop_assert_eq!(events.joined.len(), count);
        }
        for &victim in &events.departed {
            prop_assert!(victim.as_usize() < len_before);
        }
    }

    /// A Byzantine conversion and a catastrophic failure scheduled for the
    /// same cycle: whichever order they are composed in, no node is counted
    /// both ways. Converted-then-killed nodes report as departed only (the
    /// reconciliation drops them from the converted list); killed-then-
    /// converted cannot happen because the conversion samples alive nodes.
    #[test]
    fn same_cycle_convert_and_failure_never_double_count(
        convert_first in any::<bool>(),
        size in 20usize..80,
        convert_percent in 10u32..70,
        kill_percent in 10u32..70,
        seed in any::<u64>(),
    ) {
        let mut rng = SimRng::seed_from(seed);
        let mut network = Network::with_random_ids(size, &mut rng);
        let convert = Box::new(ByzantineConversion::new(3, f64::from(convert_percent) / 100.0));
        let failure = Box::new(CatastrophicFailure::new(3, f64::from(kill_percent) / 100.0));
        let mut composite = if convert_first {
            CompositeChurn::new().with(convert).with(failure)
        } else {
            CompositeChurn::new().with(failure).with(convert)
        };
        for cycle in 0..3 {
            prop_assert!(composite.apply(cycle, &mut network, &mut rng).is_empty());
        }
        let len_before = network.len();
        let events = composite.apply(3, &mut network, &mut rng);
        let departed: HashSet<NodeIndex> = events.departed.iter().copied().collect();
        for &node in &events.converted {
            prop_assert!(!departed.contains(&node), "{:?} converted and departed", node);
            prop_assert!(network.is_alive(node));
            prop_assert!(node.as_usize() < len_before);
        }
        let expected_converts =
            ((size as f64) * f64::from(convert_percent) / 100.0).round() as usize;
        if convert_first {
            // The failure may have killed some converts; only survivors report.
            prop_assert!(events.converted.len() <= expected_converts);
        } else {
            // The conversion sampled the post-failure population, so every
            // reported convert survived by construction.
            let survivors = size - events.departed.len();
            let post_failure =
                ((survivors as f64) * f64::from(convert_percent) / 100.0).round() as usize;
            prop_assert_eq!(events.converted.len(), post_failure.min(survivors));
        }
        // The conversion is one-shot: replaying a later cycle converts no one.
        prop_assert!(composite.apply(4, &mut network, &mut rng).converted.is_empty());
    }
}
