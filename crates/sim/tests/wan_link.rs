//! Property tests for the WAN link model.
//!
//! Pins the two guarantees the rest of the stack builds on: `Wan` latency is
//! a *pure function* of `(src, dst, seed)` — same answer on every call, no
//! engine RNG consumed — and every answer respects the bounds the model
//! declares from its placement spec.

use bss_sim::link::{LinkModel, WanLink, WanParams};
use bss_sim::network::NodeIndex;
use bss_util::coords::PlacementSpec;
use bss_util::rng::SimRng;
use proptest::prelude::*;
use std::sync::Arc;

/// Builds one of the three placement shapes from generated raw knobs.
fn spec(kind: u8, extent: u32, regions: u32, spread: u32) -> PlacementSpec {
    let extent = f64::from(extent % 5000 + 1);
    let spread = f64::from(spread % 500);
    match kind % 3 {
        0 => PlacementSpec::UniformPlane {
            width: extent,
            height: extent / 2.0 + 1.0,
        },
        1 => PlacementSpec::Clustered {
            regions: regions % 8 + 1,
            width: extent,
            height: extent,
            spread,
        },
        _ => PlacementSpec::Dumbbell {
            separation: extent,
            spread,
        },
    }
}

proptest! {
    #[test]
    fn wan_latency_is_deterministic_and_within_bounds(
        kind in any::<u8>(),
        extent in any::<u32>(),
        geo in any::<u64>(),
        seed in any::<u64>(),
        pair in any::<u32>(),
        knobs in any::<u64>(),
    ) {
        // Unpack the generated knobs (the proptest shim caps tuple arity).
        let regions = (geo & 0xFFFF_FFFF) as u32;
        let spread = (geo >> 32) as u32;
        let src = pair & 0xFF;
        let dst = (pair >> 8) & 0xFF;
        let base = knobs % 100;
        let per_unit_centi = (knobs >> 8) % 500;
        let jitter = (knobs >> 24) % 50;
        let spec = spec(kind, extent, regions, spread);
        prop_assert!(spec.validate().is_ok(), "generated spec must be valid: {spec:?}");
        let placement = Arc::new(spec.generate(64, seed));
        let params = WanParams {
            base_millis: base,
            millis_per_unit: per_unit_centi as f64 / 100.0,
            jitter_millis: jitter,
            inter_region_loss: 0.0,
        };
        prop_assert!(params.validate().is_ok());

        let mut wan = WanLink::new(Arc::clone(&placement), params, seed);
        let (from, to) = (NodeIndex::new(src), NodeIndex::new(dst));
        let mut rng = SimRng::seed_from(seed ^ 0xABCD);
        let fingerprint = rng.clone();

        // Deterministic per (src, dst, seed): repeated queries agree, a
        // rebuilt model agrees, and the engine RNG is never consumed.
        let latency = wan.latency_millis(from, to, &mut rng);
        prop_assert_eq!(latency, wan.latency_millis(from, to, &mut rng));
        let mut rebuilt = WanLink::new(placement, params, seed);
        prop_assert_eq!(latency, rebuilt.latency_millis(from, to, &mut rng));
        prop_assert_eq!(rng, fingerprint);

        // Declared bounds hold — including for lazily-derived late joiners
        // (src/dst range past the 64 precomputed coordinates).
        let (min, max) = wan.bounds();
        prop_assert!(min <= max);
        prop_assert!(
            (min..=max).contains(&latency),
            "latency {} outside declared bounds [{}, {}]", latency, min, max
        );
    }
}
