//! # bss-tman — generic gossip-based topology construction (T-Man)
//!
//! The paper builds its leaf sets with a mechanism "similar to the application of
//! T-MAN for building a sorted ring" (§4, citing Jelasity & Babaoglu, ESOA 2005).
//! This crate implements that generic protocol so that it can serve two roles in
//! the reproduction:
//!
//! 1. **Component reference** — the leaf-set half of the bootstrapping service is a
//!    specialisation of T-Man with a ring ranking function; having the generic
//!    protocol lets the tests compare the two.
//! 2. **Ablation baseline** — running plain T-Man (ring construction only, no
//!    prefix-table feedback) quantifies how much the paper's mutual-boosting design
//!    buys (reported by the `ablation` experiment binary).
//!
//! Modules:
//!
//! * [`ranking`] — pluggable ranking functions: ring distance, XOR distance,
//!   directed line.
//! * [`protocol`] — the generic gossip protocol over a
//!   [`PeerSampler`](bss_sampling::sampler::PeerSampler).
//! * [`ring`] — quality metrics for the sorted-ring target topology.
//!
//! # Example
//!
//! ```rust
//! use bss_sampling::sampler::OracleSampler;
//! use bss_sim::engine::cycle::CycleEngine;
//! use bss_sim::network::Network;
//! use bss_tman::protocol::{TmanConfig, TmanProtocol};
//! use bss_tman::ranking::RingRanking;
//! use bss_tman::ring::ring_completeness;
//! use bss_util::rng::SimRng;
//!
//! let mut rng = SimRng::seed_from(3);
//! let network = Network::with_random_ids(128, &mut rng);
//! let mut engine = CycleEngine::new(network, rng);
//! let mut tman = TmanProtocol::new(
//!     TmanConfig::default(),
//!     RingRanking,
//!     OracleSampler::new(),
//! );
//! tman.init_all(engine.context_mut());
//! engine.run(&mut tman, 25);
//! let completeness = ring_completeness(&tman, &engine.context().network);
//! assert!(completeness > 0.99, "ring should be (almost) perfect: {completeness}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod protocol;
pub mod ranking;
pub mod ring;

pub use protocol::{TmanConfig, TmanProtocol};
pub use ranking::{LineRanking, Ranking, RingRanking, XorRanking};
