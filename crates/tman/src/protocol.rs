//! The generic T-Man gossip protocol.
//!
//! Every node keeps a bounded view of the best-ranked descriptors it has seen. Each
//! cycle it picks a peer from the better half of its view, the two exchange their
//! views plus a handful of fresh random samples, and both keep the best entries of
//! the union. The construction converges to the topology defined by the ranking
//! function in a logarithmic number of cycles.

use crate::ranking::Ranking;
use bss_sampling::sampler::PeerSampler;
use bss_sim::engine::cycle::{CycleProtocol, EngineContext};
use bss_sim::network::{Network, NodeIndex};
use bss_util::descriptor::{dedup_freshest, Descriptor, PackedDescriptor};
use bss_util::id::NodeId;
use bss_util::view::ViewArena;

/// Parameters of the generic protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TmanConfig {
    /// Number of descriptors kept in every node's view.
    pub view_size: usize,
    /// Number of descriptors sent in each exchange (at most the view size).
    pub message_size: usize,
    /// Number of fresh random samples mixed into the buffer every cycle.
    pub random_samples: usize,
}

impl Default for TmanConfig {
    fn default() -> Self {
        TmanConfig {
            view_size: 20,
            message_size: 20,
            random_samples: 10,
        }
    }
}

/// The T-Man protocol state for every node in a simulation.
///
/// Views are stored in a flat [`ViewArena`] (one fixed-capacity slot per node)
/// of eight-byte packed descriptors — identifiers are recovered from the
/// network registry on the way out — and every exchange reuses protocol-owned
/// scratch buffers, so the gossip hot path does not allocate per view or per
/// message.
#[derive(Debug)]
pub struct TmanProtocol<R, S> {
    config: TmanConfig,
    ranking: R,
    sampler: S,
    views: ViewArena<PackedDescriptor>,
    exchanges: u64,
    /// Reusable buffer for the initiator's outgoing message.
    request_scratch: Vec<Descriptor<NodeIndex>>,
    /// Reusable buffer for the peer's answer.
    answer_scratch: Vec<Descriptor<NodeIndex>>,
    /// Reusable buffer for view ∪ received merges.
    merge_scratch: Vec<Descriptor<NodeIndex>>,
    /// Reusable buffer for re-packing a merged view into its arena slot.
    packed_scratch: Vec<PackedDescriptor>,
}

impl<R: Ranking, S: PeerSampler> TmanProtocol<R, S> {
    /// Creates the protocol.
    ///
    /// # Panics
    ///
    /// Panics if the view size or message size is zero.
    pub fn new(config: TmanConfig, ranking: R, sampler: S) -> Self {
        assert!(config.view_size > 0, "view_size must be positive");
        assert!(config.message_size > 0, "message_size must be positive");
        TmanProtocol {
            views: ViewArena::new(config.view_size),
            config,
            ranking,
            sampler,
            exchanges: 0,
            request_scratch: Vec::new(),
            answer_scratch: Vec::new(),
            merge_scratch: Vec::new(),
            packed_scratch: Vec::new(),
        }
    }

    /// The protocol parameters.
    pub fn config(&self) -> &TmanConfig {
        &self.config
    }

    /// Number of exchanges attempted so far.
    pub fn exchanges(&self) -> u64 {
        self.exchanges
    }

    /// The current packed view of `node`, best-ranked first, if initialised.
    /// Use [`TmanProtocol::view_unpacked`] to recover full descriptors.
    pub fn view(&self, node: NodeIndex) -> Option<&[PackedDescriptor]> {
        self.views.get(node.as_usize())
    }

    /// The current view of `node` expanded to full descriptors through the
    /// network registry, best-ranked first, if initialised.
    pub fn view_unpacked(
        &self,
        node: NodeIndex,
        network: &Network,
    ) -> Option<Vec<Descriptor<NodeIndex>>> {
        self.views
            .get(node.as_usize())
            .map(|view| view.iter().map(|&p| network.unpack(p)).collect())
    }

    /// Initialises every alive node with random seeds from the sampler.
    pub fn init_all(&mut self, ctx: &mut EngineContext) {
        self.sampler.init_all(ctx);
        let nodes: Vec<NodeIndex> = ctx.network.alive_indices().collect();
        for node in nodes {
            self.init_node(node, ctx);
        }
    }

    /// Initialises one node with random seeds from the sampler.
    pub fn init_node(&mut self, node: NodeIndex, ctx: &mut EngineContext) {
        let seeds = self.sampler.sample(node, self.config.view_size, 0, ctx);
        let own_id = ctx.network.id(node);
        let mut view = seeds;
        self.normalise(own_id, &mut view);
        self.packed_scratch.clear();
        self.packed_scratch.extend(view.iter().map(Network::pack));
        self.views.set(node.as_usize(), &self.packed_scratch);
    }

    fn normalise(&self, own_id: NodeId, view: &mut Vec<Descriptor<NodeIndex>>) {
        view.retain(|d| d.id() != own_id);
        dedup_freshest(view);
        self.ranking.select_top(own_id, view, self.config.view_size);
    }

    /// Fills `buffer` with what a node sends to `peer_id`: its own descriptor, its
    /// view and some fresh random samples, ranked from the peer's point of view
    /// (partial selection) and truncated to the message size.
    fn fill_buffer(
        &mut self,
        buffer: &mut Vec<Descriptor<NodeIndex>>,
        node: NodeIndex,
        peer_id: NodeId,
        cycle: u64,
        ctx: &mut EngineContext,
    ) {
        buffer.clear();
        buffer.push(ctx.network.descriptor(node, cycle));
        if let Some(view) = self.views.get(node.as_usize()) {
            buffer.extend(view.iter().map(|&p| ctx.network.unpack(p)));
        }
        // Samples append straight into the reused buffer — no intermediate
        // vector per exchange.
        self.sampler
            .sample_into(node, self.config.random_samples, cycle, ctx, buffer);
        buffer.retain(|d| d.id() != peer_id);
        dedup_freshest(buffer);
        self.ranking
            .select_top(peer_id, buffer, self.config.message_size);
    }

    fn merge(&mut self, node: NodeIndex, received: &[Descriptor<NodeIndex>], ctx: &EngineContext) {
        if !self.views.is_occupied(node.as_usize()) {
            return;
        }
        let own_id = ctx.network.id(node);
        let mut scratch = std::mem::take(&mut self.merge_scratch);
        scratch.clear();
        if let Some(view) = self.views.get(node.as_usize()) {
            scratch.extend(view.iter().map(|&p| ctx.network.unpack(p)));
        }
        scratch.extend_from_slice(received);
        self.normalise(own_id, &mut scratch);
        self.packed_scratch.clear();
        self.packed_scratch
            .extend(scratch.iter().map(Network::pack));
        self.views.set(node.as_usize(), &self.packed_scratch);
        self.merge_scratch = scratch;
    }
}

impl<R: Ranking, S: PeerSampler> CycleProtocol for TmanProtocol<R, S> {
    fn execute_node(&mut self, node: NodeIndex, cycle: u64, ctx: &mut EngineContext) {
        self.exchanges += 1;
        // Select a peer from the better half of the view (falling back to a random
        // sample while the view is still empty).
        let peer = match self.view(node) {
            Some(view) if !view.is_empty() => {
                let half = (view.len() / 2).max(1);
                Some(NodeIndex::new(view[ctx.rng.index(half)].address()))
            }
            _ => self
                .sampler
                .sample(node, 1, cycle, ctx)
                .into_iter()
                .next()
                .map(|d| d.address()),
        };
        let Some(peer) = peer else { return };
        if peer == node {
            return;
        }
        let peer_id = ctx.network.id(peer);

        let mut request = std::mem::take(&mut self.request_scratch);
        self.fill_buffer(&mut request, node, peer_id, cycle, ctx);
        if !ctx.deliver(node, peer) || !ctx.network.is_alive(peer) {
            self.request_scratch = request;
            return;
        }
        let node_id = ctx.network.id(node);
        let mut answer = std::mem::take(&mut self.answer_scratch);
        self.fill_buffer(&mut answer, peer, node_id, cycle, ctx);
        let answer_delivered = ctx.deliver(peer, node);
        self.merge(peer, &request, ctx);
        if answer_delivered {
            self.merge(node, &answer, ctx);
        }
        self.request_scratch = request;
        self.answer_scratch = answer;
    }

    fn node_joined(&mut self, node: NodeIndex, cycle: u64, ctx: &mut EngineContext) {
        self.sampler.init_node(node, cycle, ctx);
        self.init_node(node, ctx);
    }

    fn node_departed(&mut self, node: NodeIndex, _cycle: u64, ctx: &mut EngineContext) {
        self.sampler.node_departed(node, ctx);
        self.views.clear(node.as_usize());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::{LineRanking, RingRanking};
    use bss_sampling::sampler::OracleSampler;
    use bss_sim::engine::cycle::CycleEngine;
    use bss_sim::network::Network;
    use bss_sim::transport::DropTransport;
    use bss_util::rng::SimRng;

    fn engine(size: usize, seed: u64) -> CycleEngine {
        let mut rng = SimRng::seed_from(seed);
        let network = Network::with_random_ids(size, &mut rng);
        CycleEngine::new(network, rng)
    }

    #[test]
    fn views_respect_capacity_and_exclude_self() {
        let mut eng = engine(100, 1);
        let mut tman = TmanProtocol::new(TmanConfig::default(), RingRanking, OracleSampler::new());
        tman.init_all(eng.context_mut());
        eng.run(&mut tman, 10);
        for node in eng.context().network.all_indices() {
            let view = tman.view_unpacked(node, &eng.context().network).unwrap();
            assert!(view.len() <= 20);
            let own = eng.context().network.id(node);
            assert!(view.iter().all(|d| d.id() != own));
        }
        assert_eq!(tman.exchanges(), 1000);
        assert_eq!(tman.config().view_size, 20);
    }

    #[test]
    fn ring_ranking_converges_to_true_neighbours() {
        let mut eng = engine(200, 2);
        let mut tman = TmanProtocol::new(TmanConfig::default(), RingRanking, OracleSampler::new());
        tman.init_all(eng.context_mut());
        eng.run(&mut tman, 25);
        let completeness = crate::ring::ring_completeness(&tman, &eng.context().network);
        assert!(completeness > 0.99, "completeness {completeness}");
    }

    #[test]
    fn line_ranking_finds_line_neighbours() {
        let mut eng = engine(100, 3);
        let mut tman = TmanProtocol::new(TmanConfig::default(), LineRanking, OracleSampler::new());
        tman.init_all(eng.context_mut());
        eng.run(&mut tman, 25);
        // Every node's best-ranked view entry should be its true nearest neighbour
        // on the line for the vast majority of nodes.
        let network = &eng.context().network;
        let mut ids: Vec<_> = network.alive_ids();
        ids.sort_unstable();
        let mut correct = 0usize;
        for node in network.alive_indices() {
            let own = network.id(node);
            let position = ids.binary_search(&own).unwrap();
            let mut best_true = u64::MAX;
            if position > 0 {
                best_true = best_true.min(own.raw().abs_diff(ids[position - 1].raw()));
            }
            if position + 1 < ids.len() {
                best_true = best_true.min(own.raw().abs_diff(ids[position + 1].raw()));
            }
            let view = tman.view_unpacked(node, network).unwrap();
            if view
                .first()
                .map(|d| own.raw().abs_diff(d.id().raw()) == best_true)
                .unwrap_or(false)
            {
                correct += 1;
            }
        }
        assert!(
            correct >= 98,
            "only {correct}/100 found their nearest neighbour"
        );
    }

    #[test]
    fn survives_message_loss() {
        let mut rng = SimRng::seed_from(4);
        let network = Network::with_random_ids(150, &mut rng);
        let mut eng =
            CycleEngine::new(network, rng).with_transport(Box::new(DropTransport::new(0.2)));
        let mut tman = TmanProtocol::new(TmanConfig::default(), RingRanking, OracleSampler::new());
        tman.init_all(eng.context_mut());
        eng.run(&mut tman, 40);
        let completeness = crate::ring::ring_completeness(&tman, &eng.context().network);
        assert!(
            completeness > 0.98,
            "completeness under loss {completeness}"
        );
    }

    #[test]
    fn churn_hooks_create_and_destroy_views() {
        use bss_sim::churn::UniformChurn;
        let mut rng = SimRng::seed_from(5);
        let network = Network::with_random_ids(80, &mut rng);
        let mut eng = CycleEngine::new(network, rng).with_churn(Box::new(UniformChurn::new(0.05)));
        let mut tman = TmanProtocol::new(TmanConfig::default(), RingRanking, OracleSampler::new());
        tman.init_all(eng.context_mut());
        eng.run(&mut tman, 10);
        for node in eng.context().network.all_indices() {
            assert_eq!(
                tman.view(node).is_some(),
                eng.context().network.is_alive(node)
            );
        }
    }

    #[test]
    #[should_panic(expected = "view_size")]
    fn zero_view_size_is_rejected() {
        let _ = TmanProtocol::new(
            TmanConfig {
                view_size: 0,
                message_size: 1,
                random_samples: 0,
            },
            RingRanking,
            OracleSampler::new(),
        );
    }
}
