//! Ranking functions: how a node orders candidate neighbours.
//!
//! T-Man is parameterised by a ranking function that, given a base identifier,
//! orders candidate identifiers by desirability. The emergent topology is the one
//! in which every node's view contains the best-ranked peers: a ring for
//! [`RingRanking`], a Kademlia-style structure for [`XorRanking`], a sorted line
//! for [`LineRanking`].

use bss_util::descriptor::{Address, Descriptor};
use bss_util::id::NodeId;
use std::fmt::Debug;

/// Orders candidates by desirability for a given base node.
pub trait Ranking: Debug + Send + Sync {
    /// A comparable "badness" score: smaller is better.
    fn distance(&self, base: NodeId, candidate: NodeId) -> u64;

    /// Sorts `candidates` in place, best first, breaking ties by identifier so the
    /// order is deterministic.
    fn sort<A: Address>(&self, base: NodeId, candidates: &mut [Descriptor<A>])
    where
        Self: Sized,
    {
        candidates.sort_by(|a, b| {
            self.distance(base, a.id())
                .cmp(&self.distance(base, b.id()))
                .then_with(|| a.id().cmp(&b.id()))
        });
    }

    /// Keeps only the best `keep` candidates, in the same order [`Ranking::sort`]
    /// would put them in, discarding the rest.
    ///
    /// Equivalent to `sort` followed by `truncate(keep)` (the tie-break on the
    /// identifier makes the order a strict total one whenever identifiers are
    /// unique), but via partial selection: only the kept prefix is sorted, so
    /// merge buffers pay O(len + keep·log keep) instead of O(len·log len).
    fn select_top<A: Address>(&self, base: NodeId, candidates: &mut Vec<Descriptor<A>>, keep: usize)
    where
        Self: Sized,
    {
        bss_util::view::rank_top_by(candidates, keep, |a, b| {
            self.distance(base, a.id())
                .cmp(&self.distance(base, b.id()))
                .then_with(|| a.id().cmp(&b.id()))
        });
    }
}

/// Undirected ring distance: produces a sorted ring (the leaf-set topology).
#[derive(Debug, Clone, Copy, Default)]
pub struct RingRanking;

impl Ranking for RingRanking {
    fn distance(&self, base: NodeId, candidate: NodeId) -> u64 {
        base.ring_distance(candidate)
    }
}

/// XOR distance: produces the neighbourhoods Kademlia cares about.
#[derive(Debug, Clone, Copy, Default)]
pub struct XorRanking;

impl Ranking for XorRanking {
    fn distance(&self, base: NodeId, candidate: NodeId) -> u64 {
        base.xor_distance(candidate)
    }
}

/// Absolute difference on the identifier line (no wrap-around): produces a sorted
/// line, useful for testing because its optimum is easy to reason about.
#[derive(Debug, Clone, Copy, Default)]
pub struct LineRanking;

impl Ranking for LineRanking {
    fn distance(&self, base: NodeId, candidate: NodeId) -> u64 {
        base.raw().abs_diff(candidate.raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(id: u64) -> Descriptor<u32> {
        Descriptor::new(NodeId::new(id), 0, 0)
    }

    #[test]
    fn ring_ranking_wraps() {
        let r = RingRanking;
        assert_eq!(r.distance(NodeId::new(5), NodeId::new(10)), 5);
        assert_eq!(r.distance(NodeId::new(5), NodeId::new(u64::MAX)), 6);
        let mut candidates = vec![d(100), d(u64::MAX), d(10)];
        r.sort(NodeId::new(0), &mut candidates);
        assert_eq!(candidates[0].id().raw(), u64::MAX);
        assert_eq!(candidates[1].id().raw(), 10);
    }

    #[test]
    fn xor_ranking_matches_xor_metric() {
        let r = XorRanking;
        assert_eq!(r.distance(NodeId::new(0b1100), NodeId::new(0b1010)), 0b0110);
        let mut candidates = vec![d(0b0001), d(0b1000), d(0b1111)];
        r.sort(NodeId::new(0b1001), &mut candidates);
        // XOR distances from 0b1001: 0b1000 -> 1, 0b1111 -> 6, 0b0001 -> 8.
        assert_eq!(candidates[0].id().raw(), 0b1000);
        assert_eq!(candidates[1].id().raw(), 0b1111);
        assert_eq!(candidates[2].id().raw(), 0b0001);
    }

    #[test]
    fn line_ranking_does_not_wrap() {
        let r = LineRanking;
        assert_eq!(
            r.distance(NodeId::new(5), NodeId::new(u64::MAX)),
            u64::MAX - 5
        );
        assert_eq!(r.distance(NodeId::new(10), NodeId::new(4)), 6);
        let mut candidates = vec![d(u64::MAX), d(20), d(0)];
        r.sort(NodeId::new(10), &mut candidates);
        assert_eq!(candidates[0].id().raw(), 0);
        assert_eq!(candidates[1].id().raw(), 20);
        assert_eq!(candidates[2].id().raw(), u64::MAX);
    }

    #[test]
    fn ties_are_broken_by_identifier() {
        let r = RingRanking;
        let mut candidates = vec![d(15), d(5)];
        r.sort(NodeId::new(10), &mut candidates);
        assert_eq!(
            candidates[0].id().raw(),
            5,
            "equal distance, smaller id first"
        );
    }
}
