//! Quality metrics for the sorted-ring target topology.
//!
//! The bootstrap ablation compares the full protocol against plain ring-building
//! T-Man; these helpers quantify how much of the true ring a T-Man run has found.

use crate::protocol::TmanProtocol;
use crate::ranking::Ranking;
use bss_sampling::sampler::PeerSampler;
use bss_sim::network::Network;
use bss_util::id::NodeId;

/// Fraction of alive nodes whose view contains both their true ring successor and
/// their true ring predecessor. 1.0 means the sorted ring is completely known.
pub fn ring_completeness<R: Ranking, S: PeerSampler>(
    protocol: &TmanProtocol<R, S>,
    network: &Network,
) -> f64 {
    let mut ids: Vec<NodeId> = network.alive_ids();
    if ids.len() <= 1 {
        return 1.0;
    }
    ids.sort_unstable();
    let n = ids.len();
    let mut complete = 0usize;
    let mut measured = 0usize;
    for node in network.alive_indices() {
        let own = network.id(node);
        let position = ids.binary_search(&own).expect("alive node in id list");
        let successor = ids[(position + 1) % n];
        let predecessor = ids[(position + n - 1) % n];
        let Some(view) = protocol.view_unpacked(node, network) else {
            continue;
        };
        measured += 1;
        let has_successor = view.iter().any(|d| d.id() == successor);
        let has_predecessor = view.iter().any(|d| d.id() == predecessor);
        if has_successor && has_predecessor {
            complete += 1;
        }
    }
    if measured == 0 {
        0.0
    } else {
        complete as f64 / measured as f64
    }
}

/// Mean, over alive nodes, of the number of true nearest ring neighbours (up to
/// `radius` on each side) present in the node's view, normalised to `[0, 1]`.
pub fn neighbourhood_coverage<R: Ranking, S: PeerSampler>(
    protocol: &TmanProtocol<R, S>,
    network: &Network,
    radius: usize,
) -> f64 {
    let mut ids: Vec<NodeId> = network.alive_ids();
    if ids.len() <= 1 || radius == 0 {
        return 1.0;
    }
    ids.sort_unstable();
    let n = ids.len();
    let per_side = radius.min((n - 1) / 2).max(1);
    let mut covered = 0usize;
    let mut expected = 0usize;
    for node in network.alive_indices() {
        let Some(view) = protocol.view_unpacked(node, network) else {
            continue;
        };
        let own = network.id(node);
        let position = ids.binary_search(&own).expect("alive node in id list");
        for step in 1..=per_side {
            let successor = ids[(position + step) % n];
            let predecessor = ids[(position + n - step) % n];
            expected += 2;
            covered += usize::from(view.iter().any(|d| d.id() == successor));
            covered += usize::from(view.iter().any(|d| d.id() == predecessor));
        }
    }
    if expected == 0 {
        1.0
    } else {
        covered as f64 / expected as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::TmanConfig;
    use crate::ranking::RingRanking;
    use bss_sampling::sampler::OracleSampler;
    use bss_sim::engine::cycle::CycleEngine;
    use bss_util::rng::SimRng;

    #[test]
    fn completeness_is_zero_before_and_high_after_convergence() {
        let mut rng = SimRng::seed_from(1);
        let network = Network::with_random_ids(150, &mut rng);
        let mut engine = CycleEngine::new(network, rng);
        let mut tman = TmanProtocol::new(TmanConfig::default(), RingRanking, OracleSampler::new());
        tman.init_all(engine.context_mut());
        let before = ring_completeness(&tman, &engine.context().network);
        engine.run(&mut tman, 25);
        let after = ring_completeness(&tman, &engine.context().network);
        assert!(after > before, "convergence should improve completeness");
        assert!(after > 0.99);
        let coverage = neighbourhood_coverage(&tman, &engine.context().network, 3);
        assert!(coverage > 0.95, "coverage {coverage}");
    }

    #[test]
    fn trivial_networks_report_full_quality() {
        let mut rng = SimRng::seed_from(2);
        let network = Network::with_random_ids(1, &mut rng);
        let tman = TmanProtocol::new(TmanConfig::default(), RingRanking, OracleSampler::new());
        assert_eq!(ring_completeness(&tman, &network), 1.0);
        assert_eq!(neighbourhood_coverage(&tman, &network, 5), 1.0);
    }

    #[test]
    fn uninitialised_protocol_scores_zero() {
        let mut rng = SimRng::seed_from(3);
        let network = Network::with_random_ids(10, &mut rng);
        let tman = TmanProtocol::new(TmanConfig::default(), RingRanking, OracleSampler::new());
        assert_eq!(ring_completeness(&tman, &network), 0.0);
    }
}
