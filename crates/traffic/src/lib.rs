//! # bss-traffic — lookup workloads over the live overlay
//!
//! The bootstrapping service exists to make routing substrates usable; this
//! crate asks the service-level question: *what do the users routing over the
//! overlay experience while it converges, churns, or is attacked?* It wraps
//! the live traffic machinery of [`bss_core::traffic`] in a workload
//! vocabulary:
//!
//! * [`TrafficWorkload`] — an open-loop arrival model (lookups per cycle, a
//!   uniform or Zipf key distribution, one of the three
//!   [`RouterKind`] substrates, an active window) that installs itself onto an
//!   [`ExperimentConfigBuilder`] as a
//!   [`ScenarioEvent::TrafficPhase`] plus the router selection;
//! * [`TrafficSummary`] — the run-level outcome extracted from a completed
//!   [`RunReport`] (totals, success rate, hop and latency figures);
//! * [`timeline_header`] / [`append_timeline`] — the long-format TSV timeline
//!   (one row per measured cycle) the `traffic` bench bin emits, following the
//!   same shape as the adversary sweep's timeline;
//! * [`region_timeline_header`] / [`append_region_timeline`] — the same
//!   timeline split by *client region* for WAN runs: one row per region per
//!   measured window, carrying that region's success rate and latency
//!   percentiles, so tail latency shows its geography instead of one global
//!   p99. Runs without a node placement contribute no rows.
//!
//! The workload composes with every other scenario event: schedule a churn
//! burst, a catastrophe, a partition or a `ByzantineConvert` alongside the
//! traffic phase and the success series shows the service degrading and
//! recovering as the tables do.
//!
//! ```rust
//! use bss_core::experiment::ExperimentConfig;
//! use bss_core::{Experiment, KeyDist, Phase, RouterKind};
//! use bss_traffic::{TrafficSummary, TrafficWorkload};
//!
//! let mut builder = ExperimentConfig::builder();
//! builder.network_size(64).seed(3).max_cycles(40);
//! TrafficWorkload::new(Phase::new(20, 30))
//!     .lookups_per_cycle(50)
//!     .router(RouterKind::Kademlia)
//!     .key_dist(KeyDist::Uniform)
//!     .install(&mut builder);
//! let report = Experiment::new(builder.build().unwrap()).run();
//! let summary = TrafficSummary::from_report(&report).expect("traffic was scheduled");
//! assert_eq!(summary.issued, 500);
//! assert_eq!(summary.success_rate, 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use bss_core::experiment::{ExperimentConfigBuilder, RunReport};
use bss_core::scenario::ScenarioEvent;
use bss_core::{KeyDist, Phase, RouterKind};
use std::fmt::Write as _;

/// An open-loop lookup workload: so many lookups per cycle, keys drawn from a
/// distribution, resolved by one of the three routing substrates, active
/// during a window of the run. Install it on a config builder with
/// [`TrafficWorkload::install`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficWorkload {
    phase: Phase,
    lookups_per_cycle: u32,
    key_dist: KeyDist,
    router: RouterKind,
}

impl TrafficWorkload {
    /// A workload active during `phase`, with the defaults of 100 uniform
    /// lookups per cycle over the Pastry-style router.
    pub fn new(phase: Phase) -> Self {
        TrafficWorkload {
            phase,
            lookups_per_cycle: 100,
            key_dist: KeyDist::Uniform,
            router: RouterKind::Pastry,
        }
    }

    /// Sets the open-loop arrival rate (lookups issued every active cycle).
    #[must_use]
    pub fn lookups_per_cycle(mut self, rate: u32) -> Self {
        self.lookups_per_cycle = rate;
        self
    }

    /// Sets the key distribution.
    #[must_use]
    pub fn key_dist(mut self, dist: KeyDist) -> Self {
        self.key_dist = dist;
        self
    }

    /// Sets the routing substrate resolving the lookups.
    #[must_use]
    pub fn router(mut self, router: RouterKind) -> Self {
        self.router = router;
        self
    }

    /// The active window.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The scenario event this workload desugars into.
    pub fn event(&self) -> ScenarioEvent {
        ScenarioEvent::TrafficPhase {
            phase: self.phase,
            lookups_per_cycle: self.lookups_per_cycle,
            key_dist: self.key_dist,
        }
    }

    /// Installs the workload onto a config builder: appends the traffic phase
    /// to the scenario timeline and selects the router. Composes with any
    /// other events already on the builder.
    pub fn install(&self, builder: &mut ExperimentConfigBuilder) {
        builder.event(self.event()).traffic_router(self.router);
    }

    /// Total lookups the workload issues over a full window (rate × cycles).
    pub fn total_lookups(&self) -> u64 {
        u64::from(self.lookups_per_cycle) * (self.phase.end - self.phase.start)
    }
}

/// Run-level traffic outcome extracted from a [`RunReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficSummary {
    /// The routing substrate that resolved the lookups.
    pub router: RouterKind,
    /// Total lookups issued.
    pub issued: u64,
    /// Total lookups delivered.
    pub delivered: u64,
    /// Delivered over issued (1.0 when nothing was issued).
    pub success_rate: f64,
    /// Mean hops over delivered lookups.
    pub mean_hops: f64,
    /// The longest delivered lookup, in hops.
    pub max_hops: u64,
    /// The success rate of the final measured window, if any window saw
    /// traffic — the post-recovery service level a churn timeline gates on.
    pub final_window_success: Option<f64>,
    /// The lowest per-window success rate — how deep the service dipped.
    pub worst_window_success: Option<f64>,
}

impl TrafficSummary {
    /// Extracts the summary from a completed run, or `None` when the run
    /// scheduled no traffic phase.
    pub fn from_report(report: &RunReport) -> Option<Self> {
        let lookups = report.lookups()?;
        let windows = lookups.success_series().points();
        Some(TrafficSummary {
            router: lookups.router(),
            issued: lookups.issued(),
            delivered: lookups.delivered(),
            success_rate: lookups.success_rate(),
            mean_hops: lookups.mean_hops(),
            max_hops: lookups.max_hops(),
            final_window_success: windows.last().map(|&(_, v)| v),
            worst_window_success: windows
                .iter()
                .map(|&(_, v)| v)
                .min_by(|a, b| a.total_cmp(b)),
        })
    }
}

/// Header row of the long-format traffic timeline TSV (one row per measured
/// cycle per run; see [`append_timeline`]).
pub fn timeline_header() -> &'static str {
    "scenario\trouter\tengine\tn\tcycle\tsuccess_rate\thop_mean\thop_max\tlatency_p50\
     \tlatency_p95\tlatency_p99\n"
}

/// Appends one run's measured cycles to the long-format timeline: every row
/// carries the sweep coordinates (`scenario`, `router`, `engine`, `n`) so the
/// file concatenates across the whole sweep and plots with a single group-by.
pub fn append_timeline(
    timeline: &mut String,
    scenario: &str,
    router: RouterKind,
    engine: &str,
    network_size: usize,
    report: &RunReport,
) {
    let Some(lookups) = report.lookups() else {
        return;
    };
    for (position, &(cycle, success)) in lookups.success_series().points().iter().enumerate() {
        let value_at = |series: &bss_util::stats::Series| {
            series.points().get(position).map_or(0.0, |&(_, v)| v)
        };
        let _ = writeln!(
            timeline,
            "{scenario}\t{router}\t{engine}\t{network_size}\t{cycle}\t{success:.6}\t{:.6}\t{:.1}\
             \t{:.1}\t{:.1}\t{:.1}",
            value_at(lookups.hop_mean_series()),
            value_at(lookups.hop_max_series()),
            value_at(lookups.latency_p50_series()),
            value_at(lookups.latency_p95_series()),
            value_at(lookups.latency_p99_series()),
        );
    }
}

/// Header row of the per-client-region traffic timeline TSV (one row per
/// region per measured window; see [`append_region_timeline`]).
pub fn region_timeline_header() -> &'static str {
    "scenario\trouter\tengine\tn\tregion\tcycle\tsuccess_rate\tlatency_p50\tlatency_p99\n"
}

/// Appends one WAN run's per-client-region windows to the region timeline:
/// every row carries the sweep coordinates plus the *client's* region id, so
/// a single group-by surfaces which geography eats the tail latency. Runs
/// without a node placement (no `Wan` link model) have no region series and
/// contribute nothing.
pub fn append_region_timeline(
    timeline: &mut String,
    scenario: &str,
    router: RouterKind,
    engine: &str,
    network_size: usize,
    report: &RunReport,
) {
    let Some(lookups) = report.lookups() else {
        return;
    };
    for (region, success) in lookups.region_success_series().iter().enumerate() {
        for (position, &(cycle, rate)) in success.points().iter().enumerate() {
            let value_at = |series: Option<&bss_util::stats::Series>| {
                series
                    .and_then(|series| series.points().get(position))
                    .map_or(0.0, |&(_, v)| v)
            };
            let _ = writeln!(
                timeline,
                "{scenario}\t{router}\t{engine}\t{network_size}\t{region}\t{cycle}\t{rate:.6}\
                 \t{:.1}\t{:.1}",
                value_at(lookups.region_p50_series().get(region)),
                value_at(lookups.region_p99_series().get(region)),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bss_core::experiment::ExperimentConfig;
    use bss_core::Experiment;

    fn run_workload(workload: TrafficWorkload) -> RunReport {
        let mut builder = ExperimentConfig::builder();
        builder.network_size(64).seed(5).max_cycles(40);
        workload.install(&mut builder);
        Experiment::new(builder.build().unwrap()).run()
    }

    #[test]
    fn workload_installs_phase_and_router() {
        let workload = TrafficWorkload::new(Phase::new(20, 30))
            .lookups_per_cycle(40)
            .router(RouterKind::Chord)
            .key_dist(KeyDist::Zipf { exponent: 1.0 });
        assert_eq!(workload.total_lookups(), 400);
        let mut builder = ExperimentConfig::builder();
        builder.network_size(64).max_cycles(40);
        workload.install(&mut builder);
        let config = builder.build().unwrap();
        assert!(config.scenario.has_traffic());
        assert_eq!(config.traffic_router, RouterKind::Chord);
    }

    #[test]
    fn summary_reflects_a_calm_converged_run() {
        let report = run_workload(
            TrafficWorkload::new(Phase::new(20, 30))
                .lookups_per_cycle(40)
                .router(RouterKind::Kademlia),
        );
        let summary = TrafficSummary::from_report(&report).unwrap();
        assert_eq!(summary.router, RouterKind::Kademlia);
        assert_eq!(summary.issued, 400);
        assert_eq!(summary.delivered, 400);
        assert_eq!(summary.success_rate, 1.0);
        assert_eq!(summary.final_window_success, Some(1.0));
        assert_eq!(summary.worst_window_success, Some(1.0));
        assert!(summary.mean_hops > 0.0 && summary.mean_hops < 8.0);
        // A traffic-free run yields no summary.
        let calm = Experiment::new(
            ExperimentConfig::builder()
                .network_size(32)
                .build()
                .unwrap(),
        )
        .run();
        assert!(TrafficSummary::from_report(&calm).is_none());
    }

    #[test]
    fn region_timeline_splits_rows_by_client_region() {
        use bss_core::{LatencyModel, PlacementSpec, WanParams};
        let mut builder = ExperimentConfig::builder();
        builder.network_size(64).seed(5).max_cycles(40);
        builder.link_model(LatencyModel::Wan {
            placement: PlacementSpec::Clustered {
                regions: 3,
                width: 500.0,
                height: 500.0,
                spread: 25.0,
            },
            params: WanParams::default(),
        });
        TrafficWorkload::new(Phase::new(20, 30))
            .lookups_per_cycle(30)
            .install(&mut builder);
        let report = Experiment::new(builder.build().unwrap()).run();

        let mut timeline = String::from(region_timeline_header());
        append_region_timeline(
            &mut timeline,
            "wan",
            RouterKind::Pastry,
            "cycle",
            64,
            &report,
        );
        let rows: Vec<&str> = timeline.lines().skip(1).collect();
        assert!(!rows.is_empty(), "wan runs must produce region rows");
        let regions: std::collections::BTreeSet<&str> = rows
            .iter()
            .map(|row| row.split('\t').nth(4).expect("region column"))
            .collect();
        assert!(regions.len() > 1, "rows should span regions: {regions:?}");
        for row in &rows {
            assert!(row.starts_with("wan\tpastry\tcycle\t64\t"), "{row}");
            assert_eq!(row.split('\t').count(), 9, "{row}");
        }

        // A placement-free run contributes no region rows.
        let calm = run_workload(TrafficWorkload::new(Phase::new(20, 25)));
        let mut empty = String::new();
        append_region_timeline(&mut empty, "calm", RouterKind::Pastry, "cycle", 64, &calm);
        assert!(empty.is_empty());
    }

    #[test]
    fn timeline_rows_carry_the_sweep_coordinates() {
        let report = run_workload(TrafficWorkload::new(Phase::new(20, 25)).lookups_per_cycle(10));
        let mut timeline = String::from(timeline_header());
        append_timeline(
            &mut timeline,
            "calm",
            RouterKind::Pastry,
            "cycle",
            64,
            &report,
        );
        let rows: Vec<&str> = timeline.lines().skip(1).collect();
        assert_eq!(rows.len(), 5, "one row per measured active cycle");
        for row in rows {
            assert!(row.starts_with("calm\tpastry\tcycle\t64\t"), "{row}");
            assert_eq!(row.split('\t').count(), 11, "{row}");
        }
    }
}
