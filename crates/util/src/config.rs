//! Protocol parameter sets with the paper's default values.
//!
//! Two parameter bundles appear throughout the workspace:
//!
//! * [`BootstrapParams`] — the bootstrapping-service parameters of §4/§5:
//!   prefix-table geometry (`b`, `k`), leaf-set size `c`, number of random samples
//!   `cr` mixed into every message, and the communication period Δ (expressed as a
//!   cycle in the simulator, milliseconds in the UDP deployment).
//! * [`NewscastParams`] — the NEWSCAST peer-sampling parameters of §3: the cache
//!   (partial view) size and the number of descriptors exchanged per gossip round.

use crate::geometry::{InvalidGeometry, TableGeometry};
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};
use std::fmt;

/// Parameters of the bootstrapping-service protocol (paper §4, values from §5).
///
/// # Example
///
/// ```rust
/// use bss_util::config::BootstrapParams;
///
/// let params = BootstrapParams::paper_default();
/// assert_eq!(params.leaf_set_size, 20);
/// assert_eq!(params.random_samples, 30);
/// assert_eq!(params.geometry().unwrap().bits_per_digit(), 4);
///
/// let custom = BootstrapParams::builder()
///     .leaf_set_size(8)
///     .random_samples(10)
///     .build()
///     .unwrap();
/// assert_eq!(custom.leaf_set_size, 8);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct BootstrapParams {
    /// Bits per digit (`b`). The paper uses 4.
    pub bits_per_digit: u8,
    /// Descriptors per prefix-table slot (`k`). The paper uses 3.
    pub entries_per_slot: usize,
    /// Leaf-set size (`c`), split evenly between successors and predecessors. The
    /// paper uses 20.
    pub leaf_set_size: usize,
    /// Number of random samples (`cr`) obtained from the peer sampling service and
    /// mixed into every outgoing message. The paper uses 30.
    pub random_samples: usize,
    /// Length of a cycle (Δ) in milliseconds. Only meaningful for the event-driven
    /// simulator and the UDP deployment; the cycle-driven engine treats a cycle as
    /// an abstract unit. The paper suggests periods "in the range of 10 seconds"
    /// for NEWSCAST; the bootstrap protocol can run much faster.
    pub cycle_millis: u64,
    /// Descriptor aging bound, in cycles: when set, a descriptor whose freshness
    /// timestamp lags the local logical clock by more than this bound is treated
    /// as evidence of a departed node — it is rejected from incoming messages and
    /// evicted from the leaf set and prefix table during every merge. This is the
    /// NEWSCAST-style failure detector that lets the overlay *recover* after a
    /// catastrophic failure instead of gossiping stale descriptors forever.
    ///
    /// `None` (the default) disables aging entirely, reproducing the paper's
    /// detector-free protocol cycle for cycle. Sensible values are a small
    /// multiple of the gossip diameter — around the leaf-set size `c` — so that
    /// live descriptors, which are re-stamped by their owner on every exchange,
    /// never look stale in the steady state.
    pub descriptor_max_age: Option<u64>,
    /// Descriptor verification key: when set, every descriptor received by the
    /// bootstrapping protocol is checked with the keyed identity stamp (the
    /// simulator's stand-in for verifying a signature over the descriptor by
    /// the identifier's key holder) and descriptors whose identifier does not
    /// authentically bind to their address are rejected before any merge. This
    /// is the countermeasure against forged-descriptor and eclipse (ID spray)
    /// adversaries.
    ///
    /// `None` (the default) disables verification and leaves the honest
    /// protocol path byte-identical to the unverified one.
    pub descriptor_verifier: Option<u64>,
}

impl BootstrapParams {
    /// The configuration used throughout the paper's evaluation:
    /// `b = 4`, `k = 3`, `c = 20`, `cr = 30`.
    pub fn paper_default() -> Self {
        BootstrapParams {
            bits_per_digit: 4,
            entries_per_slot: 3,
            leaf_set_size: 20,
            random_samples: 30,
            cycle_millis: 1000,
            descriptor_max_age: None,
            descriptor_verifier: None,
        }
    }

    /// Starts building a configuration from the paper defaults.
    pub fn builder() -> BootstrapParamsBuilder {
        BootstrapParamsBuilder {
            params: Self::paper_default(),
        }
    }

    /// The prefix-table geometry implied by `bits_per_digit` and `entries_per_slot`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidGeometry`] when the digit width or slot capacity is invalid.
    pub fn geometry(&self) -> Result<TableGeometry, InvalidGeometry> {
        TableGeometry::new(self.bits_per_digit, self.entries_per_slot)
    }

    /// Validates the whole parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParams`] when the geometry is invalid
    /// ([`InvalidParams::Geometry`]), the leaf set is empty or not even (it must
    /// hold `c/2` successors and `c/2` predecessors), the cycle length is zero,
    /// or a descriptor aging bound of zero cycles is requested
    /// ([`InvalidParams::OutOfRange`] — every descriptor not stamped this very
    /// cycle would count as stale).
    pub fn validate(&self) -> Result<(), InvalidParams> {
        self.geometry()?;
        if let Some(0) = self.descriptor_max_age {
            return Err(InvalidParams::OutOfRange {
                field: "descriptor_max_age",
                value: 0.0,
                min: 1.0,
                max: u64::MAX as f64,
            });
        }
        if self.leaf_set_size == 0 {
            return Err(InvalidParams::from_message(
                "leaf_set_size must be positive",
            ));
        }
        if self.leaf_set_size % 2 != 0 {
            return Err(InvalidParams::Message(format!(
                "leaf_set_size must be even to balance successors and predecessors, got {}",
                self.leaf_set_size
            )));
        }
        if self.cycle_millis == 0 {
            return Err(InvalidParams::from_message("cycle_millis must be positive"));
        }
        Ok(())
    }
}

impl Default for BootstrapParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl fmt::Display for BootstrapParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "b={} k={} c={} cr={} delta={}ms",
            self.bits_per_digit,
            self.entries_per_slot,
            self.leaf_set_size,
            self.random_samples,
            self.cycle_millis
        )?;
        if let Some(age) = self.descriptor_max_age {
            write!(f, " max_age={age}")?;
        }
        if let Some(key) = self.descriptor_verifier {
            write!(f, " verifier=0x{key:x}")?;
        }
        Ok(())
    }
}

/// Non-consuming builder for [`BootstrapParams`].
#[derive(Clone, Debug)]
pub struct BootstrapParamsBuilder {
    params: BootstrapParams,
}

impl BootstrapParamsBuilder {
    /// Sets the number of bits per digit (`b`).
    pub fn bits_per_digit(&mut self, b: u8) -> &mut Self {
        self.params.bits_per_digit = b;
        self
    }

    /// Sets the number of descriptors per slot (`k`).
    pub fn entries_per_slot(&mut self, k: usize) -> &mut Self {
        self.params.entries_per_slot = k;
        self
    }

    /// Sets the leaf-set size (`c`).
    pub fn leaf_set_size(&mut self, c: usize) -> &mut Self {
        self.params.leaf_set_size = c;
        self
    }

    /// Sets the number of random samples per message (`cr`).
    pub fn random_samples(&mut self, cr: usize) -> &mut Self {
        self.params.random_samples = cr;
        self
    }

    /// Sets the cycle length Δ in milliseconds.
    pub fn cycle_millis(&mut self, delta: u64) -> &mut Self {
        self.params.cycle_millis = delta;
        self
    }

    /// Sets (or, with `None`, disables) the descriptor aging bound in cycles.
    pub fn descriptor_max_age(&mut self, max_age: Option<u64>) -> &mut Self {
        self.params.descriptor_max_age = max_age;
        self
    }

    /// Sets (or, with `None`, disables) the descriptor verification key.
    pub fn descriptor_verifier(&mut self, key: Option<u64>) -> &mut Self {
        self.params.descriptor_verifier = key;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParams`] when [`BootstrapParams::validate`] fails.
    pub fn build(&self) -> Result<BootstrapParams, InvalidParams> {
        self.params.validate()?;
        Ok(self.params)
    }
}

/// Error returned when a parameter set (protocol parameters, experiment
/// configuration or scenario timeline) fails validation.
///
/// The typed variants let callers react to *why* a configuration was rejected
/// (out-of-range probability, empty scenario window, overlapping exclusive
/// phases) instead of string-matching; [`InvalidParams::Message`] remains the
/// catch-all for one-off conditions.
#[derive(Debug, Clone, PartialEq)]
pub enum InvalidParams {
    /// A free-form validation failure (the catch-all used by simple checks).
    Message(String),
    /// The prefix-table geometry (`b`, `k`) is invalid. Carrying the typed
    /// [`InvalidGeometry`] instead of its rendered message lets callers match
    /// on geometry misconfiguration (it used to be stringified into
    /// [`InvalidParams::Message`]).
    Geometry(InvalidGeometry),
    /// A numeric field lies outside its allowed range (for example a drop
    /// probability above 1.0, which older code silently clamped).
    OutOfRange {
        /// Which field was out of range.
        field: &'static str,
        /// The offending value.
        value: f64,
        /// Smallest allowed value (inclusive).
        min: f64,
        /// Largest allowed value (inclusive).
        max: f64,
    },
    /// A scenario window is empty (`start >= end`), so it could never apply.
    EmptyWindow {
        /// Which timeline entry owned the window.
        field: &'static str,
        /// First cycle of the window (inclusive).
        start: u64,
        /// End of the window (exclusive).
        end: u64,
    },
    /// A scenario event names a node index that does not exist in the
    /// configured network (for example an eclipse attack targeting node 2048
    /// in a 1024-node run). Rejected — never clamped — because a silently
    /// retargeted attack would measure the wrong victim.
    NodeOutOfBounds {
        /// Which timeline entry named the node.
        field: &'static str,
        /// The offending node index.
        node: u64,
        /// Number of nodes in the configured network.
        network_size: u64,
    },
    /// Two phases of a kind that must not overlap (loss windows, partition
    /// windows) cover a common cycle, making the active condition ambiguous.
    OverlappingPhases {
        /// Which kind of phase overlapped.
        kind: &'static str,
        /// The `[start, end)` window of the earlier phase.
        first: (u64, u64),
        /// The `[start, end)` window of the later, conflicting phase.
        second: (u64, u64),
    },
}

impl InvalidParams {
    /// Creates a validation error with the given message. Exposed so that
    /// higher-level configuration types (experiment configurations, benchmark
    /// sweeps) can report their own validation failures with the same error type.
    pub fn from_message(message: impl Into<String>) -> Self {
        InvalidParams::Message(message.into())
    }
}

impl From<InvalidGeometry> for InvalidParams {
    fn from(error: InvalidGeometry) -> Self {
        InvalidParams::Geometry(error)
    }
}

impl fmt::Display for InvalidParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid parameters: ")?;
        match self {
            InvalidParams::Message(message) => write!(f, "{message}"),
            InvalidParams::Geometry(error) => write!(f, "{error}"),
            InvalidParams::OutOfRange {
                field,
                value,
                min,
                max,
            } => write!(f, "{field} = {value} must lie in [{min}, {max}]"),
            InvalidParams::EmptyWindow { field, start, end } => {
                write!(f, "{field} window [{start}, {end}) is empty")
            }
            InvalidParams::NodeOutOfBounds {
                field,
                node,
                network_size,
            } => write!(
                f,
                "{field} names node {node} but the network only has nodes 0..{network_size}"
            ),
            InvalidParams::OverlappingPhases {
                kind,
                first,
                second,
            } => write!(
                f,
                "{kind} phases [{}, {}) and [{}, {}) overlap",
                first.0, first.1, second.0, second.1
            ),
        }
    }
}

impl std::error::Error for InvalidParams {}

/// Parameters of the NEWSCAST peer sampling service (paper §3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct NewscastParams {
    /// Size of the partial view (descriptor cache) kept at every node. The paper
    /// reports implementations with "approximately 30 IP addresses".
    pub view_size: usize,
    /// Gossip period in milliseconds ("typically long, in the range of 10 seconds").
    /// Only meaningful outside the cycle-driven engine.
    pub period_millis: u64,
    /// View aging bound, in cycles: when set, descriptors whose timestamp lags
    /// the local clock by more than this bound are dropped during every view
    /// merge, on top of NEWSCAST's keep-the-freshest ranking. `None` (the
    /// default, matching §3's protocol exactly) relies on ranking alone.
    pub descriptor_max_age: Option<u64>,
    /// View diversity quota: when set, at most this many view slots may be
    /// held by descriptors originating from any single address after a merge.
    /// This caps the damage of a hub attack — a Byzantine node flooding
    /// sybil-identified copies of its own address can occupy at most
    /// `view_diversity_quota` slots instead of wiping the whole view.
    ///
    /// `None` (the default, matching §3's protocol exactly) leaves merges
    /// byte-identical to the unquotaed path.
    pub view_diversity_quota: Option<usize>,
}

impl NewscastParams {
    /// The configuration described in §3: a cache of 30 descriptors, 10 s period.
    pub fn paper_default() -> Self {
        NewscastParams {
            view_size: 30,
            period_millis: 10_000,
            descriptor_max_age: None,
            view_diversity_quota: None,
        }
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParams`] when the view size or period is zero, or a view
    /// aging bound of zero cycles is requested.
    pub fn validate(&self) -> Result<(), InvalidParams> {
        if self.view_size == 0 {
            return Err(InvalidParams::from_message("view_size must be positive"));
        }
        if self.period_millis == 0 {
            return Err(InvalidParams::from_message(
                "period_millis must be positive",
            ));
        }
        if let Some(0) = self.descriptor_max_age {
            return Err(InvalidParams::OutOfRange {
                field: "descriptor_max_age",
                value: 0.0,
                min: 1.0,
                max: u64::MAX as f64,
            });
        }
        if let Some(0) = self.view_diversity_quota {
            return Err(InvalidParams::OutOfRange {
                field: "view_diversity_quota",
                value: 0.0,
                min: 1.0,
                max: usize::MAX as f64,
            });
        }
        Ok(())
    }
}

impl Default for NewscastParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl fmt::Display for NewscastParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "view={} period={}ms", self.view_size, self.period_millis)?;
        if let Some(quota) = self.view_diversity_quota {
            write!(f, " quota={quota}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_evaluation_section() {
        let p = BootstrapParams::paper_default();
        assert_eq!(p.bits_per_digit, 4);
        assert_eq!(p.entries_per_slot, 3);
        assert_eq!(p.leaf_set_size, 20);
        assert_eq!(p.random_samples, 30);
        assert!(p.validate().is_ok());

        let n = NewscastParams::paper_default();
        assert_eq!(n.view_size, 30);
        assert_eq!(n.period_millis, 10_000);
        assert!(n.validate().is_ok());
    }

    #[test]
    fn default_trait_matches_paper_default() {
        assert_eq!(BootstrapParams::default(), BootstrapParams::paper_default());
        assert_eq!(NewscastParams::default(), NewscastParams::paper_default());
    }

    #[test]
    fn builder_overrides_fields() {
        let p = BootstrapParams::builder()
            .bits_per_digit(2)
            .entries_per_slot(1)
            .leaf_set_size(8)
            .random_samples(5)
            .cycle_millis(250)
            .build()
            .unwrap();
        assert_eq!(p.bits_per_digit, 2);
        assert_eq!(p.entries_per_slot, 1);
        assert_eq!(p.leaf_set_size, 8);
        assert_eq!(p.random_samples, 5);
        assert_eq!(p.cycle_millis, 250);
    }

    #[test]
    fn validation_rejects_bad_configurations() {
        assert!(BootstrapParams::builder()
            .bits_per_digit(3)
            .build()
            .is_err());
        assert!(BootstrapParams::builder().leaf_set_size(0).build().is_err());
        assert!(BootstrapParams::builder().leaf_set_size(7).build().is_err());
        assert!(BootstrapParams::builder().cycle_millis(0).build().is_err());
        assert!(BootstrapParams::builder()
            .entries_per_slot(0)
            .build()
            .is_err());

        let bad_view = NewscastParams {
            view_size: 0,
            period_millis: 1,
            ..NewscastParams::paper_default()
        };
        assert!(bad_view.validate().is_err());
        let bad_period = NewscastParams {
            view_size: 1,
            period_millis: 0,
            ..NewscastParams::paper_default()
        };
        assert!(bad_period.validate().is_err());
    }

    #[test]
    fn geometry_errors_are_typed_and_matchable() {
        // The stringly InvalidParams::Message mapping is gone: geometry
        // misconfiguration surfaces as the typed Geometry variant (carrying
        // the original InvalidGeometry), so callers can match on it.
        let err = BootstrapParams::builder()
            .bits_per_digit(3)
            .build()
            .unwrap_err();
        assert!(matches!(err, InvalidParams::Geometry(_)), "{err:?}");
        assert!(err.to_string().contains("geometry"), "{err}");
        let err = BootstrapParams::builder()
            .entries_per_slot(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, InvalidParams::Geometry(_)), "{err:?}");
    }

    #[test]
    fn descriptor_aging_is_validated_and_off_by_default() {
        assert_eq!(BootstrapParams::paper_default().descriptor_max_age, None);
        assert_eq!(NewscastParams::paper_default().descriptor_max_age, None);

        let aged = BootstrapParams::builder()
            .descriptor_max_age(Some(8))
            .build()
            .unwrap();
        assert_eq!(aged.descriptor_max_age, Some(8));
        assert!(aged.to_string().contains("max_age=8"));

        // A zero bound would declare everything stale; reject it, typed.
        let err = BootstrapParams::builder()
            .descriptor_max_age(Some(0))
            .build()
            .unwrap_err();
        assert!(
            matches!(
                err,
                InvalidParams::OutOfRange {
                    field: "descriptor_max_age",
                    ..
                }
            ),
            "{err:?}"
        );
        let bad_newscast = NewscastParams {
            descriptor_max_age: Some(0),
            ..NewscastParams::paper_default()
        };
        assert!(bad_newscast.validate().is_err());
    }

    #[test]
    fn countermeasures_are_validated_and_off_by_default() {
        assert_eq!(BootstrapParams::paper_default().descriptor_verifier, None);
        assert_eq!(NewscastParams::paper_default().view_diversity_quota, None);

        let verified = BootstrapParams::builder()
            .descriptor_verifier(Some(0xBEEF))
            .build()
            .unwrap();
        assert_eq!(verified.descriptor_verifier, Some(0xBEEF));
        assert!(verified.to_string().contains("verifier=0xbeef"));

        let quotaed = NewscastParams {
            view_diversity_quota: Some(2),
            ..NewscastParams::paper_default()
        };
        assert!(quotaed.validate().is_ok());
        assert!(quotaed.to_string().contains("quota=2"));

        // A zero quota would empty every view on merge; reject it, typed.
        let err = NewscastParams {
            view_diversity_quota: Some(0),
            ..NewscastParams::paper_default()
        }
        .validate()
        .unwrap_err();
        assert!(
            matches!(
                err,
                InvalidParams::OutOfRange {
                    field: "view_diversity_quota",
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn node_out_of_bounds_error_is_typed_and_informative() {
        let err = InvalidParams::NodeOutOfBounds {
            field: "id_spray target",
            node: 2048,
            network_size: 1024,
        };
        let text = err.to_string();
        assert!(text.contains("id_spray target"), "{text}");
        assert!(text.contains("2048"), "{text}");
        assert!(text.contains("0..1024"), "{text}");
    }

    #[test]
    fn errors_and_display_are_informative() {
        let err = BootstrapParams::builder()
            .leaf_set_size(7)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("even"));
        let p = BootstrapParams::paper_default();
        let text = p.to_string();
        assert!(text.contains("c=20"));
        assert!(text.contains("cr=30"));
        let n = NewscastParams::paper_default().to_string();
        assert!(n.contains("view=30"));
    }

    #[cfg(feature = "serde")]
    #[test]
    fn parameter_types_are_serde_and_thread_safe() {
        fn assert_serde<T: Serialize + for<'de> Deserialize<'de> + Send + Sync>() {}
        assert_serde::<BootstrapParams>();
        assert_serde::<NewscastParams>();
    }
}
