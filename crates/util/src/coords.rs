//! 2-D node placement: coordinates and region ids for WAN topology modelling.
//!
//! The simulators historically treated the network as homogeneous — one global
//! latency model, no geography. This module supplies the missing layer: every
//! node gets a point on a plane and a region id, generated deterministically
//! from a [`PlacementSpec`] and a seed. Link models (see `bss_sim::link`) then
//! derive per-`(src, dst)` latency from coordinate distance, and scenario
//! events can target whole regions.
//!
//! Note this is unrelated to [`crate::geometry`], which describes the shape of
//! a prefix *routing table* (`(b, k)` parameters), not physical space.
//!
//! # Determinism
//!
//! Placement never touches the simulation's main RNG stream. Every coordinate
//! is a pure function of `(spec, seed, node index)`: the generators seed a
//! private [`SimRng`] per node from a salted hash of the index. This has two
//! consequences that the rest of the stack relies on:
//!
//! * enabling placement cannot perturb an existing run's RNG stream (goldens
//!   stay byte-identical with topology off), and
//! * nodes that join *after* the initial population (`MassiveJoin`) get
//!   deterministic coordinates too — [`Placement::coord`] accepts any raw
//!   index, computing coordinates past the precomputed prefix on the fly.

use crate::config::InvalidParams;
use crate::rng::SimRng;

/// Salt mixed into the placement seed so coordinate draws can never collide
/// with any other derived stream (spells `"coords!!"`).
pub const COORDS_SALT: u64 = 0x636f_6f72_6473_2121;

/// Odd multiplier (the golden-ratio increment from SplitMix64) used to spread
/// node indices across the seed space before the per-node RNG is seeded.
const NODE_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// A point on the placement plane, in abstract distance units.
///
/// The unit is whatever the [`PlacementSpec`] says it is; the WAN link model
/// converts units to milliseconds via its `millis_per_unit` factor.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Coord {
    /// Horizontal position.
    pub x: f64,
    /// Vertical position.
    pub y: f64,
}

impl Coord {
    /// Euclidean distance to another point.
    #[must_use]
    pub fn distance(self, other: Coord) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// A seeded recipe for placing nodes on the plane.
///
/// All three generators are deterministic per `(spec, seed, node index)` and
/// assign regions round-robin (`node % region_count`), so regions stay
/// balanced no matter how many nodes join later.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlacementSpec {
    /// Nodes uniform over a `width × height` rectangle; a single region.
    UniformPlane {
        /// Plane width in distance units.
        width: f64,
        /// Plane height in distance units.
        height: f64,
    },
    /// `regions` cluster centers drawn uniformly over the plane, each node
    /// placed in a uniform disc of radius `spread` around its region's center.
    Clustered {
        /// Number of cluster regions (must be at least 1).
        regions: u32,
        /// Plane width in distance units.
        width: f64,
        /// Plane height in distance units.
        height: f64,
        /// Radius of the uniform disc around each cluster center.
        spread: f64,
    },
    /// Two data centers `separation` apart (regions 0 and 1), each node in a
    /// uniform disc of radius `spread` around its center — the classic
    /// dumbbell used to study cross-DC traffic.
    Dumbbell {
        /// Distance between the two data-center centers.
        separation: f64,
        /// Radius of the uniform disc around each center.
        spread: f64,
    },
}

impl Default for PlacementSpec {
    /// A 1000 × 1000 uniform plane.
    fn default() -> Self {
        PlacementSpec::UniformPlane {
            width: 1000.0,
            height: 1000.0,
        }
    }
}

/// Validates that `value` is a finite, strictly positive length.
fn positive(field: &'static str, value: f64) -> Result<(), InvalidParams> {
    if !value.is_finite() || value <= 0.0 {
        return Err(InvalidParams::OutOfRange {
            field,
            value,
            min: f64::MIN_POSITIVE,
            max: f64::MAX,
        });
    }
    Ok(())
}

/// Validates that `value` is a finite, non-negative length.
fn non_negative(field: &'static str, value: f64) -> Result<(), InvalidParams> {
    if !value.is_finite() || value < 0.0 {
        return Err(InvalidParams::OutOfRange {
            field,
            value,
            min: 0.0,
            max: f64::MAX,
        });
    }
    Ok(())
}

impl PlacementSpec {
    /// Number of regions this spec partitions nodes into.
    #[must_use]
    pub fn region_count(&self) -> u32 {
        match *self {
            PlacementSpec::UniformPlane { .. } => 1,
            PlacementSpec::Clustered { regions, .. } => regions.max(1),
            PlacementSpec::Dumbbell { .. } => 2,
        }
    }

    /// Upper bound on the distance between any two placed nodes. Link models
    /// use this to declare latency bounds without enumerating pairs.
    #[must_use]
    pub fn max_distance(&self) -> f64 {
        match *self {
            PlacementSpec::UniformPlane { width, height } => width.hypot(height),
            PlacementSpec::Clustered {
                width,
                height,
                spread,
                ..
            } => width.hypot(height) + 2.0 * spread,
            PlacementSpec::Dumbbell { separation, spread } => separation + 2.0 * spread,
        }
    }

    /// Rejects degenerate specs: zero-area planes, zero regions, negative or
    /// non-finite spreads. Errors are the typed
    /// [`InvalidParams::OutOfRange`], matching the validation convention used
    /// by scenario events.
    pub fn validate(&self) -> Result<(), InvalidParams> {
        match *self {
            PlacementSpec::UniformPlane { width, height } => {
                positive("placement width", width)?;
                positive("placement height", height)?;
            }
            PlacementSpec::Clustered {
                regions,
                width,
                height,
                spread,
            } => {
                if regions == 0 {
                    return Err(InvalidParams::OutOfRange {
                        field: "placement regions",
                        value: 0.0,
                        min: 1.0,
                        max: f64::from(u32::MAX),
                    });
                }
                positive("placement width", width)?;
                positive("placement height", height)?;
                non_negative("placement spread", spread)?;
            }
            PlacementSpec::Dumbbell { separation, spread } => {
                positive("placement separation", separation)?;
                non_negative("placement spread", spread)?;
            }
        }
        Ok(())
    }

    /// Generates a placement for an initial population of `size` nodes.
    ///
    /// The first `size` coordinates are precomputed; [`Placement::coord`]
    /// computes later indices (late joiners) on demand from the same pure
    /// per-node derivation, so a node's position never depends on when it was
    /// asked for.
    #[must_use]
    pub fn generate(&self, size: usize, seed: u64) -> Placement {
        let centers = self.centers(seed);
        let mut placement = Placement {
            spec: *self,
            seed,
            centers,
            coords: Vec::with_capacity(size),
        };
        for node in 0..size {
            let coord = placement.derive(node);
            placement.coords.push(coord);
        }
        placement
    }

    /// Region centers shared by every node of a region.
    fn centers(&self, seed: u64) -> Vec<Coord> {
        match *self {
            PlacementSpec::UniformPlane { width, height } => vec![Coord {
                x: width / 2.0,
                y: height / 2.0,
            }],
            PlacementSpec::Clustered {
                regions,
                width,
                height,
                ..
            } => {
                let mut rng = SimRng::seed_from(seed ^ COORDS_SALT);
                (0..regions.max(1))
                    .map(|_| Coord {
                        x: rng.unit_f64() * width,
                        y: rng.unit_f64() * height,
                    })
                    .collect()
            }
            PlacementSpec::Dumbbell { separation, .. } => vec![
                Coord { x: 0.0, y: 0.0 },
                Coord {
                    x: separation,
                    y: 0.0,
                },
            ],
        }
    }
}

/// Concrete node placement: coordinates and region ids for a population.
///
/// Produced by [`PlacementSpec::generate`]; cheap to clone behind an `Arc`.
/// Indices are the simulator's raw node indices, so the placement stays valid
/// as nodes die and join — positions are never reassigned.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    spec: PlacementSpec,
    seed: u64,
    centers: Vec<Coord>,
    coords: Vec<Coord>,
}

impl Placement {
    /// The spec this placement was generated from.
    #[must_use]
    pub fn spec(&self) -> PlacementSpec {
        self.spec
    }

    /// The placement seed (the experiment seed; salting is internal).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of precomputed coordinates (the initial population size).
    #[must_use]
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// True when no coordinates were precomputed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Number of regions nodes are partitioned into.
    #[must_use]
    pub fn region_count(&self) -> u32 {
        self.spec.region_count()
    }

    /// Region id of a raw node index (round-robin, so valid for any index).
    #[must_use]
    pub fn region(&self, node: usize) -> u32 {
        (node as u64 % u64::from(self.region_count())) as u32
    }

    /// Coordinate of a raw node index. Indices beyond the precomputed prefix
    /// (late joiners) are derived on the fly from the same pure function.
    #[must_use]
    pub fn coord(&self, node: usize) -> Coord {
        match self.coords.get(node) {
            Some(coord) => *coord,
            None => self.derive(node),
        }
    }

    /// Euclidean distance between two nodes' coordinates.
    #[must_use]
    pub fn distance(&self, a: usize, b: usize) -> f64 {
        self.coord(a).distance(self.coord(b))
    }

    /// Pure per-node coordinate derivation: a private RNG seeded from
    /// `(seed, node)` draws the position, so the result is independent of
    /// every other stream in the run and of generation order.
    fn derive(&self, node: usize) -> Coord {
        let mixed = (self.seed ^ COORDS_SALT).wrapping_add((node as u64).wrapping_mul(NODE_SALT));
        let mut rng = SimRng::seed_from(mixed);
        match self.spec {
            PlacementSpec::UniformPlane { width, height } => Coord {
                x: rng.unit_f64() * width,
                y: rng.unit_f64() * height,
            },
            PlacementSpec::Clustered { spread, .. } | PlacementSpec::Dumbbell { spread, .. } => {
                let center = self.centers[self.region(node) as usize];
                disc(center, spread, &mut rng)
            }
        }
    }
}

/// Uniform draw from a disc of radius `spread` around `center`.
fn disc(center: Coord, spread: f64, rng: &mut SimRng) -> Coord {
    let angle = rng.unit_f64() * std::f64::consts::TAU;
    let radius = spread * rng.unit_f64().sqrt();
    Coord {
        x: center.x + radius * angle.cos(),
        y: center.y + radius * angle.sin(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = PlacementSpec::Clustered {
            regions: 4,
            width: 500.0,
            height: 400.0,
            spread: 25.0,
        };
        let a = spec.generate(64, 7);
        let b = spec.generate(64, 7);
        assert_eq!(a, b);
        let c = spec.generate(64, 8);
        assert_ne!(a, c, "a different seed must move the nodes");
    }

    #[test]
    fn late_joiners_match_a_larger_initial_population() {
        // A node's coordinate must not depend on whether it was part of the
        // precomputed prefix: index 100 of a 64-node placement (derived
        // lazily) equals index 100 of a 128-node placement (precomputed).
        for spec in [
            PlacementSpec::UniformPlane {
                width: 300.0,
                height: 300.0,
            },
            PlacementSpec::Clustered {
                regions: 3,
                width: 300.0,
                height: 300.0,
                spread: 10.0,
            },
            PlacementSpec::Dumbbell {
                separation: 200.0,
                spread: 15.0,
            },
        ] {
            let small = spec.generate(64, 42);
            let large = spec.generate(128, 42);
            assert_eq!(small.coord(100), large.coord(100));
            assert_eq!(small.region(100), large.region(100));
        }
    }

    #[test]
    fn regions_are_balanced_round_robin() {
        let spec = PlacementSpec::Clustered {
            regions: 3,
            width: 100.0,
            height: 100.0,
            spread: 5.0,
        };
        let placement = spec.generate(9, 1);
        let mut counts = [0usize; 3];
        for node in 0..9 {
            counts[placement.region(node) as usize] += 1;
        }
        assert_eq!(counts, [3, 3, 3]);
    }

    #[test]
    fn coordinates_respect_max_distance() {
        for spec in [
            PlacementSpec::UniformPlane {
                width: 120.0,
                height: 90.0,
            },
            PlacementSpec::Clustered {
                regions: 5,
                width: 120.0,
                height: 90.0,
                spread: 30.0,
            },
            PlacementSpec::Dumbbell {
                separation: 80.0,
                spread: 12.0,
            },
        ] {
            let placement = spec.generate(128, 3);
            let bound = spec.max_distance();
            for a in 0..128 {
                for b in 0..128 {
                    assert!(
                        placement.distance(a, b) <= bound,
                        "{spec:?}: distance({a}, {b}) exceeds max_distance {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn dumbbell_separates_the_two_regions() {
        let spec = PlacementSpec::Dumbbell {
            separation: 1000.0,
            spread: 10.0,
        };
        let placement = spec.generate(32, 5);
        // Cross-region pairs are far apart; same-region pairs are close.
        assert!(placement.distance(0, 1) > 900.0);
        assert!(placement.distance(0, 2) < 100.0);
        assert!(placement.distance(1, 3) < 100.0);
    }

    #[test]
    fn zero_area_and_empty_region_specs_are_rejected_with_typed_errors() {
        let zero_width = PlacementSpec::UniformPlane {
            width: 0.0,
            height: 10.0,
        };
        assert_eq!(
            zero_width.validate(),
            Err(InvalidParams::OutOfRange {
                field: "placement width",
                value: 0.0,
                min: f64::MIN_POSITIVE,
                max: f64::MAX,
            })
        );
        let no_regions = PlacementSpec::Clustered {
            regions: 0,
            width: 10.0,
            height: 10.0,
            spread: 1.0,
        };
        assert_eq!(
            no_regions.validate(),
            Err(InvalidParams::OutOfRange {
                field: "placement regions",
                value: 0.0,
                min: 1.0,
                max: f64::from(u32::MAX),
            })
        );
        let negative_spread = PlacementSpec::Dumbbell {
            separation: 10.0,
            spread: -1.0,
        };
        assert!(matches!(
            negative_spread.validate(),
            Err(InvalidParams::OutOfRange {
                field: "placement spread",
                ..
            })
        ));
        let nan_separation = PlacementSpec::Dumbbell {
            separation: f64::NAN,
            spread: 1.0,
        };
        assert!(nan_separation.validate().is_err());
    }

    #[test]
    fn valid_specs_pass_validation() {
        assert_eq!(PlacementSpec::default().validate(), Ok(()));
        assert_eq!(
            PlacementSpec::Clustered {
                regions: 8,
                width: 1.0,
                height: 1.0,
                spread: 0.0,
            }
            .validate(),
            Ok(())
        );
    }
}
