//! Node descriptors: the unit of information exchanged by every gossip protocol in
//! this workspace.
//!
//! A descriptor binds a [`NodeId`] to an *address* — whatever a peer needs in order
//! to contact the node — together with a freshness timestamp used by NEWSCAST to
//! prefer recent information. In the simulator the address is a dense node index;
//! in the UDP deployment it is a socket address. The protocol crates are generic
//! over the address type through the [`Address`] trait.

use crate::id::NodeId;
use std::fmt::Debug;
use std::hash::Hash;

/// Requirements on the address type carried by a [`Descriptor`].
///
/// The trait is automatically implemented for every type satisfying the bounds, so
/// simulator indices (`u32`-like newtypes), `std::net::SocketAddr` and test stubs
/// can all act as addresses without any explicit implementation.
pub trait Address: Copy + Eq + Ord + Hash + Debug + Send + Sync + 'static {}

impl<T> Address for T where T: Copy + Eq + Ord + Hash + Debug + Send + Sync + 'static {}

/// A node descriptor: identifier, contact address and freshness timestamp.
///
/// The timestamp is a logical time (cycle number in the simulator, coarse wall
/// clock in the UDP deployment); larger means fresher. NEWSCAST keeps the freshest
/// descriptors it has seen, which is how stale information about departed nodes is
/// eventually purged.
///
/// # Example
///
/// ```rust
/// use bss_util::descriptor::Descriptor;
/// use bss_util::id::NodeId;
///
/// let d = Descriptor::new(NodeId::new(42), 7u32, 3);
/// assert_eq!(d.id(), NodeId::new(42));
/// assert_eq!(d.address(), 7);
/// assert_eq!(d.timestamp(), 3);
/// assert!(d.refreshed(10).timestamp() == 10);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Descriptor<A> {
    id: NodeId,
    address: A,
    timestamp: u64,
}

impl<A: Address> Descriptor<A> {
    /// Creates a descriptor from its parts.
    pub fn new(id: NodeId, address: A, timestamp: u64) -> Self {
        Descriptor {
            id,
            address,
            timestamp,
        }
    }

    /// The node's identifier.
    #[inline]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's contact address.
    #[inline]
    pub fn address(&self) -> A {
        self.address
    }

    /// Logical freshness timestamp; larger is fresher.
    #[inline]
    pub fn timestamp(&self) -> u64 {
        self.timestamp
    }

    /// The descriptor's age relative to the logical clock `now` (zero for
    /// timestamps at or ahead of `now`).
    #[inline]
    pub fn age(&self, now: u64) -> u64 {
        now.saturating_sub(self.timestamp)
    }

    /// Whether the descriptor counts as *expired* under an aging bound: its
    /// timestamp lags `now` by strictly more than `max_age` cycles. Expired
    /// descriptors are what the failure-detecting merge path rejects and
    /// evicts — a node that keeps gossiping re-stamps its own descriptor every
    /// exchange, so only departed nodes' information ever expires.
    #[inline]
    pub fn is_expired(&self, now: u64, max_age: u64) -> bool {
        self.age(now) > max_age
    }

    /// Returns a copy of the descriptor with its timestamp replaced by `now`.
    #[must_use]
    pub fn refreshed(&self, now: u64) -> Self {
        Descriptor {
            timestamp: now,
            ..*self
        }
    }

    /// Returns whichever of the two descriptors is fresher, preferring `self` on a
    /// tie. Both descriptors must refer to the same node.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the descriptors refer to different identifiers.
    #[must_use]
    pub fn fresher_of(self, other: Self) -> Self {
        debug_assert_eq!(self.id, other.id, "fresher_of called on different nodes");
        if other.timestamp > self.timestamp {
            other
        } else {
            self
        }
    }
}

impl<A: Address + Default> Default for Descriptor<A> {
    /// A placeholder descriptor (identifier 0, default address, timestamp 0),
    /// used as arena filler and scratch initialiser.
    fn default() -> Self {
        Descriptor::new(NodeId::new(0), A::default(), 0)
    }
}

/// A descriptor packed to eight bytes for the simulator's hot membership
/// structures: the node's dense `u32` registry index (which is also its
/// position in the shared identifier arena) plus a `u32` logical timestamp.
///
/// The full [`Descriptor`] spends 16 of its 24 bytes on the 64-bit identifier
/// and timestamp, but inside the simulator the identifier is recoverable from
/// the registry (`ids[address]`) and timestamps are cycle numbers that never
/// approach `2^32`. Packing halves-to-thirds the per-entry footprint of every
/// leaf set, prefix table and gossip view, which is what lets million-node
/// networks fit in commodity memory.
///
/// # Example
///
/// ```rust
/// use bss_util::descriptor::PackedDescriptor;
///
/// let p = PackedDescriptor::new(7, 3);
/// assert_eq!(p.address(), 7);
/// assert_eq!(p.timestamp(), 3);
/// assert_eq!(std::mem::size_of::<PackedDescriptor>(), 8);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct PackedDescriptor {
    address: u32,
    timestamp: u32,
}

impl PackedDescriptor {
    /// Packs an address index and logical timestamp.
    ///
    /// Debug builds assert that the timestamp fits in 32 bits; the simulator's
    /// timestamps are cycle numbers (or millisecond event times), which stay
    /// far below `2^32` for any feasible run length.
    #[inline]
    pub fn new(address: u32, timestamp: u64) -> Self {
        debug_assert!(
            timestamp <= u64::from(u32::MAX),
            "timestamp {timestamp} exceeds the packed 32-bit range"
        );
        PackedDescriptor {
            address,
            timestamp: timestamp as u32,
        }
    }

    /// The node's dense registry index.
    #[inline]
    pub fn address(self) -> u32 {
        self.address
    }

    /// Logical freshness timestamp; larger is fresher.
    #[inline]
    pub fn timestamp(self) -> u64 {
        u64::from(self.timestamp)
    }
}

/// Buffers at most this long are deduplicated by in-place quadratic scanning
/// (no allocation); longer buffers switch to the open-addressing path.
const LINEAR_DEDUP_MAX: usize = 24;

/// Buffers at most this long use a stack-resident open-addressing table (no
/// allocation, no SipHash); anything longer falls back to the sort-based path.
const OPEN_ADDRESSING_MAX: usize = 2000;

/// Open-addressing dedup with an `N`-slot stack probe table (`N` a power of
/// two, at least `2 * len` so the load factor stays at most one half). `N` is
/// a const parameter so typical merge-buffer sizes only pay a few hundred
/// bytes of table zeroing, not the worst case's.
fn open_addressing_dedup<A: Address, const N: usize>(descriptors: &mut Vec<Descriptor<A>>) {
    let len = descriptors.len();
    debug_assert!(2 * len <= N);
    let mask = N - 1;
    let mut table = [0u16; N];
    let mut write = 0usize;
    'reads: for read in 0..len {
        let candidate = descriptors[read];
        let mut probe =
            (candidate.id().raw().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & mask;
        loop {
            let slot = table[probe];
            if slot == 0 {
                table[probe] = write as u16 + 1;
                descriptors[write] = candidate;
                write += 1;
                continue 'reads;
            }
            let existing = &mut descriptors[slot as usize - 1];
            if existing.id() == candidate.id() {
                if candidate.timestamp() > existing.timestamp() {
                    *existing = candidate;
                }
                continue 'reads;
            }
            probe = (probe + 1) & mask;
        }
    }
    descriptors.truncate(write);
}

/// Deduplicates a set of descriptors by identifier, keeping the freshest descriptor
/// for each identifier (ties keep the earlier occurrence). The relative order of
/// first occurrences is preserved.
///
/// This runs on the gossip merge hot path for every exchanged message, so it
/// avoids hashing entirely: small buffers are compacted in place with a linear
/// membership scan, large ones with two index sorts — both allocation-free or
/// one-small-allocation, and several times faster than a per-call hash map.
pub fn dedup_freshest<A: Address>(descriptors: &mut Vec<Descriptor<A>>) {
    let len = descriptors.len();
    if len <= 1 {
        return;
    }
    if len <= LINEAR_DEDUP_MAX {
        let mut write = 0usize;
        for read in 0..len {
            let candidate = descriptors[read];
            match descriptors[..write]
                .iter_mut()
                .find(|kept| kept.id() == candidate.id())
            {
                Some(existing) => {
                    if candidate.timestamp() > existing.timestamp() {
                        *existing = candidate;
                    }
                }
                None => {
                    descriptors[write] = candidate;
                    write += 1;
                }
            }
        }
        descriptors.truncate(write);
        return;
    }
    // Open addressing over *kept* positions: the probe table maps a hash to
    // `kept position + 1` (0 = vacant). Stack-resident, multiplicative
    // hashing — roughly an order of magnitude cheaper than a per-call
    // `HashMap` on the merge hot path. Tiered table sizes keep the zeroing
    // cost proportional to typical buffer lengths.
    if len <= 120 {
        return open_addressing_dedup::<A, 256>(descriptors);
    }
    if len <= 500 {
        return open_addressing_dedup::<A, 1024>(descriptors);
    }
    if len <= OPEN_ADDRESSING_MAX {
        return open_addressing_dedup::<A, 4096>(descriptors);
    }

    // Sort positions by (id, freshest-first, earliest-first): the first entry
    // of every id-group is exactly the survivor the linear algorithm would
    // keep, and the group's smallest position is where it goes in the output.
    let mut order: Vec<u32> = (0..len as u32).collect();
    order.sort_unstable_by(|&x, &y| {
        let (a, b) = (&descriptors[x as usize], &descriptors[y as usize]);
        a.id()
            .cmp(&b.id())
            .then_with(|| b.timestamp().cmp(&a.timestamp()))
            .then_with(|| x.cmp(&y))
    });
    let mut kept: Vec<(u32, Descriptor<A>)> = Vec::with_capacity(len);
    let mut i = 0;
    while i < len {
        let winner = descriptors[order[i] as usize];
        let mut first_position = order[i];
        i += 1;
        while i < len && descriptors[order[i] as usize].id() == winner.id() {
            first_position = first_position.min(order[i]);
            i += 1;
        }
        kept.push((first_position, winner));
    }
    kept.sort_unstable_by_key(|&(position, _)| position);
    descriptors.clear();
    descriptors.extend(kept.into_iter().map(|(_, d)| d));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(id: u64, addr: u32, ts: u64) -> Descriptor<u32> {
        Descriptor::new(NodeId::new(id), addr, ts)
    }

    #[test]
    fn accessors_return_constructor_arguments() {
        let desc = d(1, 2, 3);
        assert_eq!(desc.id(), NodeId::new(1));
        assert_eq!(desc.address(), 2);
        assert_eq!(desc.timestamp(), 3);
    }

    #[test]
    fn age_and_expiry_follow_the_logical_clock() {
        let desc = d(1, 2, 10);
        assert_eq!(desc.age(10), 0);
        assert_eq!(desc.age(25), 15);
        assert_eq!(desc.age(3), 0, "future timestamps are not negative ages");
        assert!(!desc.is_expired(15, 5), "age 5 == bound 5 is still fresh");
        assert!(desc.is_expired(16, 5));
        assert!(!desc.is_expired(3, 5));
    }

    #[test]
    fn refreshed_only_changes_timestamp() {
        let desc = d(1, 2, 3).refreshed(99);
        assert_eq!(desc.id(), NodeId::new(1));
        assert_eq!(desc.address(), 2);
        assert_eq!(desc.timestamp(), 99);
    }

    #[test]
    fn fresher_of_prefers_larger_timestamp() {
        let old = d(1, 2, 3);
        let new = d(1, 2, 10);
        assert_eq!(old.fresher_of(new).timestamp(), 10);
        assert_eq!(new.fresher_of(old).timestamp(), 10);
        // Tie: keeps self.
        let other_addr = d(1, 9, 3);
        assert_eq!(old.fresher_of(other_addr).address(), 2);
    }

    #[test]
    fn dedup_keeps_freshest_per_id_and_preserves_order() {
        let mut v = vec![
            d(1, 10, 1),
            d(2, 20, 5),
            d(1, 11, 7),
            d(3, 30, 2),
            d(2, 21, 1),
        ];
        dedup_freshest(&mut v);
        assert_eq!(v.len(), 3);
        assert_eq!(v[0].id(), NodeId::new(1));
        assert_eq!(v[0].timestamp(), 7);
        assert_eq!(v[0].address(), 11);
        assert_eq!(v[1].id(), NodeId::new(2));
        assert_eq!(v[1].timestamp(), 5);
        assert_eq!(v[2].id(), NodeId::new(3));
    }

    /// The original hash-map reference semantics: first-occurrence order, keep
    /// the freshest descriptor per id, ties keep the earlier one.
    fn dedup_reference(descriptors: &[Descriptor<u32>]) -> Vec<Descriptor<u32>> {
        let mut out: Vec<Descriptor<u32>> = Vec::new();
        for d in descriptors {
            match out.iter_mut().find(|kept| kept.id() == d.id()) {
                Some(existing) => {
                    if d.timestamp() > existing.timestamp() {
                        *existing = *d;
                    }
                }
                None => out.push(*d),
            }
        }
        out
    }

    #[test]
    fn dedup_linear_and_sorted_paths_match_the_reference() {
        // Pseudo-random buffers straddling the linear/sort-based threshold,
        // with plenty of duplicate ids and timestamp ties.
        let mut state = 0x9E37_79B9u64;
        for len in [
            2usize, 7, 23, 24, 25, 64, 120, 121, 200, 500, 501, 1999, 2000, 2001, 2600,
        ] {
            let mut buffer: Vec<Descriptor<u32>> = (0..len)
                .map(|i| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let id = state % (len as u64 / 2).max(1); // force duplicates
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let ts = state % 4; // force timestamp ties
                    Descriptor::new(NodeId::new(id), i as u32, ts)
                })
                .collect();
            let expected = dedup_reference(&buffer);
            dedup_freshest(&mut buffer);
            assert_eq!(buffer, expected, "mismatch at len {len}");
        }
    }

    #[test]
    fn dedup_on_empty_and_singleton() {
        let mut empty: Vec<Descriptor<u32>> = vec![];
        dedup_freshest(&mut empty);
        assert!(empty.is_empty());

        let mut one = vec![d(1, 1, 1)];
        dedup_freshest(&mut one);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn socket_addr_is_an_address() {
        use std::net::{IpAddr, Ipv4Addr, SocketAddr};
        fn assert_address<A: Address>() {}
        assert_address::<SocketAddr>();
        assert_address::<u32>();
        let addr = SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 9000);
        let desc = Descriptor::new(NodeId::new(5), addr, 0);
        assert_eq!(desc.address(), addr);
        // keep the type check honest
        let _ = IpAddr::V4(Ipv4Addr::LOCALHOST);
    }
}
