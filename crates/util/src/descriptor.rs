//! Node descriptors: the unit of information exchanged by every gossip protocol in
//! this workspace.
//!
//! A descriptor binds a [`NodeId`] to an *address* — whatever a peer needs in order
//! to contact the node — together with a freshness timestamp used by NEWSCAST to
//! prefer recent information. In the simulator the address is a dense node index;
//! in the UDP deployment it is a socket address. The protocol crates are generic
//! over the address type through the [`Address`] trait.

use crate::id::NodeId;
use std::fmt::Debug;
use std::hash::Hash;

/// Requirements on the address type carried by a [`Descriptor`].
///
/// The trait is automatically implemented for every type satisfying the bounds, so
/// simulator indices (`u32`-like newtypes), `std::net::SocketAddr` and test stubs
/// can all act as addresses without any explicit implementation.
pub trait Address: Copy + Eq + Ord + Hash + Debug + Send + Sync + 'static {}

impl<T> Address for T where T: Copy + Eq + Ord + Hash + Debug + Send + Sync + 'static {}

/// A node descriptor: identifier, contact address and freshness timestamp.
///
/// The timestamp is a logical time (cycle number in the simulator, coarse wall
/// clock in the UDP deployment); larger means fresher. NEWSCAST keeps the freshest
/// descriptors it has seen, which is how stale information about departed nodes is
/// eventually purged.
///
/// # Example
///
/// ```rust
/// use bss_util::descriptor::Descriptor;
/// use bss_util::id::NodeId;
///
/// let d = Descriptor::new(NodeId::new(42), 7u32, 3);
/// assert_eq!(d.id(), NodeId::new(42));
/// assert_eq!(d.address(), 7);
/// assert_eq!(d.timestamp(), 3);
/// assert!(d.refreshed(10).timestamp() == 10);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Descriptor<A> {
    id: NodeId,
    address: A,
    timestamp: u64,
}

impl<A: Address> Descriptor<A> {
    /// Creates a descriptor from its parts.
    pub fn new(id: NodeId, address: A, timestamp: u64) -> Self {
        Descriptor {
            id,
            address,
            timestamp,
        }
    }

    /// The node's identifier.
    #[inline]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's contact address.
    #[inline]
    pub fn address(&self) -> A {
        self.address
    }

    /// Logical freshness timestamp; larger is fresher.
    #[inline]
    pub fn timestamp(&self) -> u64 {
        self.timestamp
    }

    /// Returns a copy of the descriptor with its timestamp replaced by `now`.
    #[must_use]
    pub fn refreshed(&self, now: u64) -> Self {
        Descriptor {
            timestamp: now,
            ..*self
        }
    }

    /// Returns whichever of the two descriptors is fresher, preferring `self` on a
    /// tie. Both descriptors must refer to the same node.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the descriptors refer to different identifiers.
    #[must_use]
    pub fn fresher_of(self, other: Self) -> Self {
        debug_assert_eq!(self.id, other.id, "fresher_of called on different nodes");
        if other.timestamp > self.timestamp {
            other
        } else {
            self
        }
    }
}

/// Deduplicates a set of descriptors by identifier, keeping the freshest descriptor
/// for each identifier. The relative order of first occurrences is preserved.
pub fn dedup_freshest<A: Address>(descriptors: &mut Vec<Descriptor<A>>) {
    use std::collections::HashMap;
    let mut best: HashMap<NodeId, (usize, Descriptor<A>)> =
        HashMap::with_capacity(descriptors.len());
    for (pos, d) in descriptors.iter().enumerate() {
        match best.get_mut(&d.id()) {
            None => {
                best.insert(d.id(), (pos, *d));
            }
            Some((_, existing)) => {
                if d.timestamp() > existing.timestamp() {
                    *existing = *d;
                }
            }
        }
    }
    let mut ordered: Vec<(usize, Descriptor<A>)> = best.into_values().collect();
    ordered.sort_by_key(|(pos, _)| *pos);
    descriptors.clear();
    descriptors.extend(ordered.into_iter().map(|(_, d)| d));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(id: u64, addr: u32, ts: u64) -> Descriptor<u32> {
        Descriptor::new(NodeId::new(id), addr, ts)
    }

    #[test]
    fn accessors_return_constructor_arguments() {
        let desc = d(1, 2, 3);
        assert_eq!(desc.id(), NodeId::new(1));
        assert_eq!(desc.address(), 2);
        assert_eq!(desc.timestamp(), 3);
    }

    #[test]
    fn refreshed_only_changes_timestamp() {
        let desc = d(1, 2, 3).refreshed(99);
        assert_eq!(desc.id(), NodeId::new(1));
        assert_eq!(desc.address(), 2);
        assert_eq!(desc.timestamp(), 99);
    }

    #[test]
    fn fresher_of_prefers_larger_timestamp() {
        let old = d(1, 2, 3);
        let new = d(1, 2, 10);
        assert_eq!(old.fresher_of(new).timestamp(), 10);
        assert_eq!(new.fresher_of(old).timestamp(), 10);
        // Tie: keeps self.
        let other_addr = d(1, 9, 3);
        assert_eq!(old.fresher_of(other_addr).address(), 2);
    }

    #[test]
    fn dedup_keeps_freshest_per_id_and_preserves_order() {
        let mut v = vec![
            d(1, 10, 1),
            d(2, 20, 5),
            d(1, 11, 7),
            d(3, 30, 2),
            d(2, 21, 1),
        ];
        dedup_freshest(&mut v);
        assert_eq!(v.len(), 3);
        assert_eq!(v[0].id(), NodeId::new(1));
        assert_eq!(v[0].timestamp(), 7);
        assert_eq!(v[0].address(), 11);
        assert_eq!(v[1].id(), NodeId::new(2));
        assert_eq!(v[1].timestamp(), 5);
        assert_eq!(v[2].id(), NodeId::new(3));
    }

    #[test]
    fn dedup_on_empty_and_singleton() {
        let mut empty: Vec<Descriptor<u32>> = vec![];
        dedup_freshest(&mut empty);
        assert!(empty.is_empty());

        let mut one = vec![d(1, 1, 1)];
        dedup_freshest(&mut one);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn socket_addr_is_an_address() {
        use std::net::{IpAddr, Ipv4Addr, SocketAddr};
        fn assert_address<A: Address>() {}
        assert_address::<SocketAddr>();
        assert_address::<u32>();
        let addr = SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 9000);
        let desc = Descriptor::new(NodeId::new(5), addr, 0);
        assert_eq!(desc.address(), addr);
        // keep the type check honest
        let _ = IpAddr::V4(Ipv4Addr::LOCALHOST);
    }
}
