//! The shape of a prefix routing table.
//!
//! The paper defines the table by two parameters (§4): `b`, the number of bits per
//! digit, and `k`, the maximum number of entries stored for each
//! `(prefix length, first differing digit)` pair. [`TableGeometry`] bundles the two
//! together with the quantities derived from them (number of rows, number of
//! columns) and the slot arithmetic used by both the protocol and the convergence
//! oracle.
//!
//! Despite the name, nothing here is spatial: this is identifier-space
//! geometry. Physical node coordinates for WAN topology modelling live in
//! [`crate::coords`].

use crate::id::{NodeId, ID_BITS};
use std::fmt;

/// Error returned when constructing an invalid [`TableGeometry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidGeometry {
    message: String,
}

impl fmt::Display for InvalidGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix-table geometry: {}", self.message)
    }
}

impl std::error::Error for InvalidGeometry {}

/// The `(b, k)` geometry of a prefix routing table.
///
/// * `b` — bits per digit; identifiers are read in base 2^b. The paper uses `b = 4`
///   ("chosen to match common settings").
/// * `k` — maximum number of descriptors kept per `(row, column)` slot. The paper
///   uses `k = 3`; values above one allow proximity optimisation.
///
/// # Example
///
/// ```rust
/// use bss_util::geometry::TableGeometry;
/// use bss_util::id::NodeId;
///
/// let g = TableGeometry::new(4, 3).unwrap();
/// assert_eq!(g.rows(), 16);
/// assert_eq!(g.columns(), 16);
///
/// let me = NodeId::new(0xAB00_0000_0000_0000);
/// let other = NodeId::new(0xAC00_0000_0000_0000);
/// // `other` shares one digit with `me` and then differs with digit 0xC.
/// assert_eq!(g.slot_of(me, other), Some((1, 0xC)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TableGeometry {
    bits_per_digit: u8,
    entries_per_slot: usize,
}

impl TableGeometry {
    /// Creates a geometry from the number of bits per digit and the slot capacity.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidGeometry`] if `bits_per_digit` is zero, greater than 8, or
    /// does not divide 64, or if `entries_per_slot` is zero.
    pub fn new(bits_per_digit: u8, entries_per_slot: usize) -> Result<Self, InvalidGeometry> {
        if bits_per_digit == 0 || bits_per_digit > 8 {
            return Err(InvalidGeometry {
                message: format!("bits_per_digit must be in 1..=8, got {bits_per_digit}"),
            });
        }
        if ID_BITS % u32::from(bits_per_digit) != 0 {
            return Err(InvalidGeometry {
                message: format!("bits_per_digit must divide 64, got {bits_per_digit}"),
            });
        }
        if entries_per_slot == 0 {
            return Err(InvalidGeometry {
                message: "entries_per_slot must be at least 1".to_owned(),
            });
        }
        Ok(TableGeometry {
            bits_per_digit,
            entries_per_slot,
        })
    }

    /// The paper's evaluation geometry: `b = 4`, `k = 3`.
    pub fn paper_default() -> Self {
        TableGeometry {
            bits_per_digit: 4,
            entries_per_slot: 3,
        }
    }

    /// Number of bits per digit (`b`).
    #[inline]
    pub fn bits_per_digit(self) -> u8 {
        self.bits_per_digit
    }

    /// Maximum number of descriptors per `(row, column)` slot (`k`).
    #[inline]
    pub fn entries_per_slot(self) -> usize {
        self.entries_per_slot
    }

    /// Number of rows of the table: one row per possible common-prefix length, i.e.
    /// `64 / b`.
    #[inline]
    pub fn rows(self) -> usize {
        (ID_BITS / u32::from(self.bits_per_digit)) as usize
    }

    /// Number of columns of the table: one per possible digit value, i.e. `2^b`.
    #[inline]
    pub fn columns(self) -> usize {
        1usize << self.bits_per_digit
    }

    /// Total number of `(row, column)` slots, excluding the diagonal (a node's own
    /// digit can never be the *first differing* digit, so that column is unusable in
    /// every row).
    #[inline]
    pub fn usable_slots(self) -> usize {
        self.rows() * (self.columns() - 1)
    }

    /// Maximum number of descriptors the table can hold.
    #[inline]
    pub fn capacity(self) -> usize {
        self.usable_slots() * self.entries_per_slot
    }

    /// The `(row, column)` slot that `other` occupies in `owner`'s prefix table, or
    /// `None` when `owner == other` (a node never stores itself).
    ///
    /// The row is the length of the longest common prefix in digits; the column is
    /// the value of `other`'s first differing digit (§4: "the prefix table of a
    /// given node contains up to k IDs for all pairs (i, j), where i is the length of
    /// the longest common prefix ... and j is the first differing digit").
    #[inline]
    pub fn slot_of(self, owner: NodeId, other: NodeId) -> Option<(usize, u8)> {
        if owner == other {
            return None;
        }
        let row = owner.common_prefix_len(other, self.bits_per_digit);
        debug_assert!(row < self.rows());
        let column = other.digit(row, self.bits_per_digit);
        Some((row, column))
    }

    /// Flattened index of a `(row, column)` slot, suitable for dense storage.
    ///
    /// # Panics
    ///
    /// Panics if the row or column is out of range.
    #[inline]
    pub fn slot_index(self, row: usize, column: u8) -> usize {
        assert!(row < self.rows(), "row {row} out of range");
        assert!(
            (column as usize) < self.columns(),
            "column {column} out of range"
        );
        row * self.columns() + column as usize
    }

    /// Number of rows that can realistically contain entries in a network of `n`
    /// uniformly random identifiers: approximately `log_{2^b}(n)` plus a small
    /// constant. Useful for sizing sparse storage; the protocol itself never relies
    /// on this.
    pub fn expected_filled_rows(self, n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        let bits = (n as f64).log2();
        ((bits / f64::from(self.bits_per_digit)).ceil() as usize + 2).min(self.rows())
    }
}

impl fmt::Display for TableGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "b={} (base {}), k={}, {}x{} slots",
            self.bits_per_digit,
            self.columns(),
            self.entries_per_slot,
            self.rows(),
            self.columns()
        )
    }
}

impl Default for TableGeometry {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_evaluation_section() {
        let g = TableGeometry::paper_default();
        assert_eq!(g.bits_per_digit(), 4);
        assert_eq!(g.entries_per_slot(), 3);
        assert_eq!(g.rows(), 16);
        assert_eq!(g.columns(), 16);
        assert_eq!(g.usable_slots(), 16 * 15);
        assert_eq!(g.capacity(), 16 * 15 * 3);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(TableGeometry::new(0, 3).is_err());
        assert!(TableGeometry::new(3, 3).is_err());
        assert!(TableGeometry::new(9, 3).is_err());
        assert!(TableGeometry::new(4, 0).is_err());
        assert!(TableGeometry::new(1, 1).is_ok());
        assert!(TableGeometry::new(8, 5).is_ok());
    }

    #[test]
    fn error_message_is_informative() {
        let err = TableGeometry::new(3, 3).unwrap_err();
        assert!(err.to_string().contains("divide 64"));
    }

    #[test]
    fn slot_of_matches_prefix_definition() {
        let g = TableGeometry::new(4, 3).unwrap();
        let me = NodeId::new(0x1234_0000_0000_0000);
        // Shares "12", differs at digit index 2 with value 0x9.
        let other = NodeId::new(0x1294_0000_0000_0000);
        assert_eq!(g.slot_of(me, other), Some((2, 0x9)));
        // Own identifier maps to no slot.
        assert_eq!(g.slot_of(me, me), None);
        // No common prefix: row 0, column = first digit of other.
        let far = NodeId::new(0xF000_0000_0000_0000);
        assert_eq!(g.slot_of(me, far), Some((0, 0xF)));
    }

    #[test]
    fn slot_column_never_equals_own_digit() {
        let g = TableGeometry::new(4, 3).unwrap();
        let me = NodeId::new(0xABCD_EF01_2345_6789);
        for raw in [0u64, 1, 0xFFFF, 0xABCD_EF01_2345_0000, u64::MAX] {
            let other = NodeId::new(raw);
            if let Some((row, col)) = g.slot_of(me, other) {
                assert_ne!(col, me.digit(row, 4), "column equals own digit for {other}");
            }
        }
    }

    #[test]
    fn slot_index_is_dense_and_unique() {
        let g = TableGeometry::new(2, 1).unwrap();
        let mut seen = std::collections::HashSet::new();
        for row in 0..g.rows() {
            for col in 0..g.columns() as u8 {
                assert!(seen.insert(g.slot_index(row, col)));
            }
        }
        assert_eq!(seen.len(), g.rows() * g.columns());
        assert_eq!(*seen.iter().max().unwrap(), g.rows() * g.columns() - 1);
    }

    #[test]
    fn expected_filled_rows_is_logarithmic() {
        let g = TableGeometry::paper_default();
        assert_eq!(g.expected_filled_rows(1), 0);
        assert!(g.expected_filled_rows(1 << 14) <= 7);
        assert!(g.expected_filled_rows(1 << 18) <= 8);
        assert!(g.expected_filled_rows(usize::MAX) <= g.rows());
    }

    #[test]
    fn display_mentions_parameters() {
        let g = TableGeometry::paper_default();
        let s = g.to_string();
        assert!(s.contains("b=4"));
        assert!(s.contains("k=3"));
    }
}
