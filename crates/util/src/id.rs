//! Node identifiers and the arithmetic the bootstrapping protocol needs on them.
//!
//! The paper uses 64-bit numeric identifiers ("In our simulations IDs are 64-bit
//! integers", §5). An identifier is viewed in two ways:
//!
//! * as a point on a **ring** of size 2^64 (for the leaf set / sorted ring), and
//! * as a sequence of base-2^b **digits**, most significant digit first (for the
//!   prefix routing table).
//!
//! [`NodeId`] provides both views plus the XOR metric used by Kademlia-style
//! consumers of the bootstrapped tables.

use std::fmt;

/// Number of bits in a [`NodeId`].
pub const ID_BITS: u32 = 64;

/// A 64-bit node identifier.
///
/// Identifiers are expected to be drawn uniformly at random (as DHTs do by hashing
/// a node's address or public key), which the simulator does via
/// [`SimRng`](crate::rng::SimRng).
///
/// # Example
///
/// ```rust
/// use bss_util::id::NodeId;
///
/// let id = NodeId::new(0xABCD_0000_0000_0000);
/// assert_eq!(id.digit(0, 4), 0xA);
/// assert_eq!(id.digit(3, 4), 0xD);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u64);

impl NodeId {
    /// The smallest possible identifier (all zero bits).
    pub const MIN: NodeId = NodeId(0);
    /// The largest possible identifier (all one bits).
    pub const MAX: NodeId = NodeId(u64::MAX);

    /// Creates an identifier from its raw 64-bit value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        NodeId(raw)
    }

    /// Returns the raw 64-bit value of the identifier.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the `index`-th digit (most significant first) when the identifier is
    /// read as a sequence of base-2^`bits_per_digit` digits.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_digit` is zero, larger than 8, does not divide 64, or if
    /// `index` is out of range (`index >= 64 / bits_per_digit`).
    #[inline]
    pub fn digit(self, index: usize, bits_per_digit: u8) -> u8 {
        let b = u32::from(bits_per_digit);
        assert!(
            bits_per_digit > 0 && bits_per_digit <= 8 && ID_BITS % b == 0,
            "bits_per_digit must be in 1..=8 and divide 64, got {bits_per_digit}"
        );
        let digits = (ID_BITS / b) as usize;
        assert!(
            index < digits,
            "digit index {index} out of range 0..{digits}"
        );
        let shift = ID_BITS - b * (index as u32 + 1);
        ((self.0 >> shift) & ((1u64 << b) - 1)) as u8
    }

    /// Number of digits an identifier has for a given digit width.
    #[inline]
    pub fn digit_count(bits_per_digit: u8) -> usize {
        let b = u32::from(bits_per_digit);
        assert!(
            bits_per_digit > 0 && bits_per_digit <= 8 && ID_BITS % b == 0,
            "bits_per_digit must be in 1..=8 and divide 64, got {bits_per_digit}"
        );
        (ID_BITS / b) as usize
    }

    /// Returns all digits of the identifier, most significant first.
    pub fn digits(self, bits_per_digit: u8) -> Vec<u8> {
        (0..Self::digit_count(bits_per_digit))
            .map(|i| self.digit(i, bits_per_digit))
            .collect()
    }

    /// Reconstructs an identifier from its digits (most significant first).
    ///
    /// # Panics
    ///
    /// Panics if the number of digits does not match `64 / bits_per_digit` or if any
    /// digit does not fit in `bits_per_digit` bits.
    pub fn from_digits(digits: &[u8], bits_per_digit: u8) -> Self {
        let expected = Self::digit_count(bits_per_digit);
        assert_eq!(
            digits.len(),
            expected,
            "expected {expected} digits, got {}",
            digits.len()
        );
        let mut raw = 0u64;
        for &d in digits {
            assert!(
                u32::from(d) < (1u32 << bits_per_digit),
                "digit {d} does not fit in {bits_per_digit} bits"
            );
            raw = (raw << bits_per_digit) | u64::from(d);
        }
        NodeId(raw)
    }

    /// Length, in digits, of the longest common prefix of `self` and `other`.
    ///
    /// This is the row index `i` of the prefix-table slot that `other` can occupy in
    /// `self`'s table. Returns `64 / bits_per_digit` when the identifiers are equal.
    #[inline]
    pub fn common_prefix_len(self, other: NodeId, bits_per_digit: u8) -> usize {
        let b = u32::from(bits_per_digit);
        assert!(
            bits_per_digit > 0 && bits_per_digit <= 8 && ID_BITS % b == 0,
            "bits_per_digit must be in 1..=8 and divide 64, got {bits_per_digit}"
        );
        let common_bits = (self.0 ^ other.0).leading_zeros();
        ((common_bits / b) as usize).min((ID_BITS / b) as usize)
    }

    /// Clockwise (increasing-identifier direction) distance from `self` to `other` on
    /// the ring of size 2^64.
    ///
    /// `other` is a *successor* of `self` iff this distance is small; the distance is
    /// zero only when the identifiers are equal.
    #[inline]
    pub fn clockwise_distance(self, other: NodeId) -> u64 {
        other.0.wrapping_sub(self.0)
    }

    /// Undirected ring distance: the minimum of the clockwise and counter-clockwise
    /// distances between the two identifiers.
    #[inline]
    pub fn ring_distance(self, other: NodeId) -> u64 {
        let cw = self.clockwise_distance(other);
        let ccw = other.clockwise_distance(self);
        cw.min(ccw)
    }

    /// Returns `true` when `other` is strictly closer to `self` in the increasing
    /// direction than in the decreasing direction, i.e. when `other` should be
    /// classified as a **successor** in the leaf set ("if an ID is closer in the
    /// increasing direction, it is a successor, otherwise it is a predecessor", §4).
    ///
    /// Equal identifiers are (arbitrarily but consistently) classified as successors.
    #[inline]
    pub fn is_successor(self, other: NodeId) -> bool {
        self.clockwise_distance(other) <= other.clockwise_distance(self)
    }

    /// XOR distance between the two identifiers (the Kademlia metric).
    #[inline]
    pub fn xor_distance(self, other: NodeId) -> u64 {
        self.0 ^ other.0
    }

    /// Returns an identifier that shares exactly `prefix_len` digits with `self`,
    /// whose next digit is `next_digit`, and whose remaining bits are taken from
    /// `suffix_bits`.
    ///
    /// This is primarily useful for constructing targeted workloads and test
    /// fixtures (e.g. "an identifier that belongs in row 3, column 7 of this node's
    /// prefix table").
    ///
    /// # Panics
    ///
    /// Panics if `prefix_len` is out of range, if `next_digit` does not fit in
    /// `bits_per_digit` bits, or if `next_digit` equals `self`'s digit at
    /// `prefix_len` (which would extend the common prefix).
    pub fn with_prefix(
        self,
        prefix_len: usize,
        next_digit: u8,
        suffix_bits: u64,
        bits_per_digit: u8,
    ) -> NodeId {
        let b = u32::from(bits_per_digit);
        let digits = Self::digit_count(bits_per_digit);
        assert!(prefix_len < digits, "prefix_len {prefix_len} out of range");
        assert!(
            u32::from(next_digit) < (1u32 << b),
            "next_digit {next_digit} does not fit in {bits_per_digit} bits"
        );
        assert_ne!(
            next_digit,
            self.digit(prefix_len, bits_per_digit),
            "next_digit must differ from the node's own digit at position {prefix_len}"
        );
        let prefix_bits = b * prefix_len as u32;
        let kept = if prefix_bits == 0 {
            0
        } else {
            self.0 & !(u64::MAX >> prefix_bits)
        };
        let digit_shift = ID_BITS - prefix_bits - b;
        let digit_part = u64::from(next_digit) << digit_shift;
        let suffix_mask = if digit_shift == 0 {
            0
        } else {
            u64::MAX >> (ID_BITS - digit_shift)
        };
        NodeId(kept | digit_part | (suffix_bits & suffix_mask))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({:016x})", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl fmt::LowerHex for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl From<u64> for NodeId {
    fn from(raw: u64) -> Self {
        NodeId(raw)
    }
}

impl From<NodeId> for u64 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

/// Sorts a slice of identifiers by ring distance from a reference point, closest
/// first. Ties are broken by raw identifier value to keep the order deterministic.
pub fn sort_by_ring_distance(ids: &mut [NodeId], from: NodeId) {
    ids.sort_by(|a, b| {
        from.ring_distance(*a)
            .cmp(&from.ring_distance(*b))
            .then_with(|| a.cmp(b))
    });
}

/// Sorts a slice of identifiers by XOR distance from a reference point, closest
/// first.
pub fn sort_by_xor_distance(ids: &mut [NodeId], from: NodeId) {
    ids.sort_by(|a, b| {
        from.xor_distance(*a)
            .cmp(&from.xor_distance(*b))
            .then_with(|| a.cmp(b))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_extraction_msb_first() {
        let id = NodeId::new(0x1234_5678_9ABC_DEF0);
        let expected = [
            0x1, 0x2, 0x3, 0x4, 0x5, 0x6, 0x7, 0x8, 0x9, 0xA, 0xB, 0xC, 0xD, 0xE, 0xF, 0x0,
        ];
        for (i, &d) in expected.iter().enumerate() {
            assert_eq!(id.digit(i, 4), d, "digit {i}");
        }
    }

    #[test]
    fn digit_extraction_binary() {
        let id = NodeId::new(0b1010u64 << 60);
        assert_eq!(id.digit(0, 1), 1);
        assert_eq!(id.digit(1, 1), 0);
        assert_eq!(id.digit(2, 1), 1);
        assert_eq!(id.digit(3, 1), 0);
        assert_eq!(NodeId::digit_count(1), 64);
    }

    #[test]
    fn digit_round_trip() {
        let id = NodeId::new(0xFEDC_BA98_7654_3210);
        for b in [1u8, 2, 4, 8] {
            let digits = id.digits(b);
            assert_eq!(digits.len(), NodeId::digit_count(b));
            assert_eq!(NodeId::from_digits(&digits, b), id);
        }
    }

    #[test]
    #[should_panic(expected = "bits_per_digit")]
    fn digit_rejects_non_dividing_width() {
        NodeId::new(1).digit(0, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn digit_rejects_out_of_range_index() {
        NodeId::new(1).digit(16, 4);
    }

    #[test]
    fn common_prefix_len_basics() {
        let a = NodeId::new(0xABCD_0000_0000_0000);
        let b = NodeId::new(0xABCE_0000_0000_0000);
        assert_eq!(a.common_prefix_len(b, 4), 3);
        assert_eq!(a.common_prefix_len(a, 4), 16);
        assert_eq!(
            NodeId::new(0).common_prefix_len(NodeId::new(u64::MAX), 4),
            0
        );
    }

    #[test]
    fn common_prefix_len_respects_digit_boundaries() {
        // Identifiers sharing 7 leading bits share only one hex digit (4 bits).
        let a = NodeId::new(0b1111_1110u64 << 56);
        let b = NodeId::new(0b1111_1111u64 << 56);
        assert_eq!(a.common_prefix_len(b, 4), 1);
        assert_eq!(a.common_prefix_len(b, 1), 7);
        assert_eq!(a.common_prefix_len(b, 8), 0);
    }

    #[test]
    fn ring_distance_is_symmetric_and_wraps() {
        let a = NodeId::new(10);
        let b = NodeId::new(u64::MAX - 9);
        assert_eq!(a.ring_distance(b), 20);
        assert_eq!(b.ring_distance(a), 20);
        assert_eq!(a.ring_distance(a), 0);
    }

    #[test]
    fn clockwise_distance_wraps() {
        let a = NodeId::new(u64::MAX);
        let b = NodeId::new(4);
        assert_eq!(a.clockwise_distance(b), 5);
        assert_eq!(b.clockwise_distance(a), u64::MAX - 4);
    }

    #[test]
    fn successor_classification() {
        let me = NodeId::new(100);
        assert!(me.is_successor(NodeId::new(150)));
        assert!(!me.is_successor(NodeId::new(50)));
        // Wrap-around: an identifier just "behind" zero is a predecessor of 100.
        assert!(!me.is_successor(NodeId::new(u64::MAX - 5)));
        // Equal identifiers count as successors by convention.
        assert!(me.is_successor(me));
    }

    #[test]
    fn xor_distance_matches_definition() {
        let a = NodeId::new(0b1100);
        let b = NodeId::new(0b1010);
        assert_eq!(a.xor_distance(b), 0b0110);
        assert_eq!(a.xor_distance(a), 0);
    }

    #[test]
    fn with_prefix_places_identifier_in_requested_slot() {
        let me = NodeId::new(0xABCD_0000_0000_0000);
        let other = me.with_prefix(2, 0x7, 0xFFFF, 4);
        assert_eq!(me.common_prefix_len(other, 4), 2);
        assert_eq!(other.digit(2, 4), 0x7);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn with_prefix_rejects_matching_digit() {
        let me = NodeId::new(0xABCD_0000_0000_0000);
        // Digit at index 2 of `me` is 0xC; asking for 0xC would extend the prefix.
        let _ = me.with_prefix(2, 0xC, 0, 4);
    }

    #[test]
    fn with_prefix_row_zero() {
        let me = NodeId::new(0x0123_4567_89AB_CDEF);
        let other = me.with_prefix(0, 0xF, 42, 4);
        assert_eq!(me.common_prefix_len(other, 4), 0);
        assert_eq!(other.digit(0, 4), 0xF);
    }

    #[test]
    fn sort_by_ring_distance_orders_closest_first() {
        let from = NodeId::new(1000);
        let mut ids = vec![
            NodeId::new(2000),
            NodeId::new(990),
            NodeId::new(1001),
            NodeId::new(u64::MAX),
        ];
        sort_by_ring_distance(&mut ids, from);
        assert_eq!(ids[0], NodeId::new(1001));
        assert_eq!(ids[1], NodeId::new(990));
        assert_eq!(ids[2], NodeId::new(2000));
        assert_eq!(ids[3], NodeId::new(u64::MAX));
    }

    #[test]
    fn sort_by_xor_distance_orders_closest_first() {
        let from = NodeId::new(0b1000);
        let mut ids = vec![NodeId::new(0), NodeId::new(0b1001), NodeId::new(0b1111)];
        sort_by_xor_distance(&mut ids, from);
        assert_eq!(ids[0], NodeId::new(0b1001));
        assert_eq!(ids[1], NodeId::new(0b1111));
        assert_eq!(ids[2], NodeId::new(0));
    }

    #[test]
    fn display_formats_as_hex() {
        let id = NodeId::new(0xAB);
        assert_eq!(id.to_string(), "00000000000000ab");
        assert_eq!(format!("{id:x}"), "ab");
        assert_eq!(format!("{id:X}"), "AB");
        assert_eq!(format!("{id:b}"), "10101011");
    }

    #[test]
    fn conversions_to_and_from_u64() {
        let id: NodeId = 42u64.into();
        let raw: u64 = id.into();
        assert_eq!(raw, 42);
    }
}
