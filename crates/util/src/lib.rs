//! # bss-util — foundations for the Bootstrapping Service reproduction
//!
//! This crate collects the small, dependency-free building blocks shared by every
//! other crate in the workspace:
//!
//! * [`id`] — [`NodeId`](id::NodeId): 64-bit node identifiers with base-2^b digit
//!   views, common-prefix computation, ring distances and XOR distances.
//! * [`geometry`] — [`TableGeometry`](geometry::TableGeometry): the `(b, k)`
//!   parameters that define the shape of a prefix routing table.
//! * [`descriptor`] — [`Descriptor`](descriptor::Descriptor): a node descriptor
//!   (identifier + address + freshness timestamp) as exchanged by the gossip
//!   protocols, generic over the address type via the [`Address`](descriptor::Address)
//!   trait.
//! * [`rng`] — [`SimRng`](rng::SimRng): a small deterministic pseudo-random number
//!   generator (SplitMix64 seeding a Xoshiro256**) so that every simulation run is
//!   exactly reproducible from its seed.
//! * [`stats`] — time series, summaries and histograms used by the experiment
//!   harness to report the paper's figures.
//! * [`view`] — [`ViewArena`](view::ViewArena): flat, allocation-free storage for
//!   the bounded per-node views kept by every gossip protocol, plus
//!   [`rank_top_by`](view::rank_top_by), the partial-selection ranking used on the
//!   merge hot path.
//! * [`config`] — protocol parameter sets ([`BootstrapParams`](config::BootstrapParams),
//!   [`NewscastParams`](config::NewscastParams)) with the paper's defaults.
//! * [`coords`] — 2-D node placement ([`PlacementSpec`](coords::PlacementSpec),
//!   [`Placement`](coords::Placement)): seeded coordinate/region generators for
//!   WAN topology modelling (not to be confused with [`geometry`], which is
//!   routing-*table* geometry).
//!
//! # Example
//!
//! ```rust
//! use bss_util::id::NodeId;
//! use bss_util::geometry::TableGeometry;
//!
//! let geometry = TableGeometry::new(4, 3).unwrap();
//! let a = NodeId::new(0xDEAD_BEEF_0000_0000);
//! let b = NodeId::new(0xDEAD_BEEF_8000_0000);
//! // The two identifiers share the first eight hexadecimal digits.
//! assert_eq!(a.common_prefix_len(b, geometry.bits_per_digit()), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod coords;
pub mod descriptor;
pub mod geometry;
pub mod id;
pub mod rng;
pub mod stats;
pub mod view;

pub use config::{BootstrapParams, NewscastParams};
pub use coords::{Coord, Placement, PlacementSpec};
pub use descriptor::{Address, Descriptor, PackedDescriptor};
pub use geometry::TableGeometry;
pub use id::NodeId;
pub use rng::SimRng;
