//! Deterministic pseudo-random number generation for reproducible simulations.
//!
//! Every stochastic choice in the simulator — identifier assignment, start-phase
//! jitter, peer selection, message drops, churn — is driven by [`SimRng`], a small
//! Xoshiro256** generator seeded through SplitMix64. Given the same seed, a
//! simulation run is bit-for-bit reproducible across platforms and releases, which
//! is what lets the experiment harness publish `(seed, series)` pairs in
//! `EXPERIMENTS.md`.
//!
//! The generator is intentionally *not* cryptographically secure; it only needs to
//! be statistically good and fast.

/// A deterministic pseudo-random number generator (Xoshiro256** seeded via
/// SplitMix64).
///
/// # Example
///
/// ```rust
/// use bss_util::rng::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let die = a.range_u64(1, 7);
/// assert!((1..7).contains(&die));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Different seeds give independent-looking streams; the same seed always gives
    /// the same stream.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u64; 4];
        for slot in &mut state {
            *slot = splitmix64(&mut sm);
        }
        // Xoshiro must not be seeded with the all-zero state; SplitMix64 cannot
        // produce four consecutive zeros, but be defensive anyway.
        if state == [0, 0, 0, 0] {
            state[0] = 1;
        }
        SimRng { state }
    }

    /// Derives an independent child generator.
    ///
    /// Useful for giving every node (or every experiment repetition) its own stream
    /// while still controlling everything from a single top-level seed.
    pub fn fork(&mut self) -> SimRng {
        let seed = self.next_u64() ^ 0xA076_1D64_78BD_642F;
        SimRng::seed_from(seed)
    }

    /// Returns the next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Returns a uniformly random `u32`.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly random value in the half-open range `[low, high)`.
    ///
    /// Uses rejection sampling (Lemire-style bounded generation) so the result is
    /// unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    #[inline]
    pub fn range_u64(&mut self, low: u64, high: u64) -> u64 {
        assert!(low < high, "empty range {low}..{high}");
        let span = high - low;
        low + self.bounded(span)
    }

    /// Returns a uniformly random index in `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot pick an index from an empty collection");
        self.bounded(len as u64) as usize
    }

    #[inline]
    fn bounded(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let value = self.next_u64();
            if value < zone || zone == 0 {
                return value % span;
            }
        }
    }

    /// Returns a uniformly random `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit_f64() < p
        }
    }

    /// Picks a uniformly random element of `slice`, or `None` when it is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.index(slice.len())])
        }
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Draws `count` elements from `slice` uniformly at random *without*
    /// replacement (partial Fisher–Yates over indices). When `count >= slice.len()`
    /// a shuffled copy of the whole slice is returned.
    pub fn sample<T: Clone>(&mut self, slice: &[T], count: usize) -> Vec<T> {
        let n = slice.len();
        if count >= n {
            let mut all: Vec<T> = slice.to_vec();
            self.shuffle(&mut all);
            return all;
        }
        let mut indices: Vec<usize> = (0..n).collect();
        for i in 0..count {
            let j = i + self.index(n - i);
            indices.swap(i, j);
        }
        indices[..count].iter().map(|&i| slice[i].clone()).collect()
    }

    /// Generates `count` *distinct* uniformly random `u64` values.
    ///
    /// Used to assign unique node identifiers; with 64-bit identifiers collisions
    /// are astronomically unlikely but we guarantee uniqueness anyway because the
    /// convergence oracle assumes distinct identifiers.
    pub fn distinct_u64(&mut self, count: usize) -> Vec<u64> {
        use std::collections::HashSet;
        let mut seen = HashSet::with_capacity(count);
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let v = self.next_u64();
            if seen.insert(v) {
                out.push(v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let collisions = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut parent = SimRng::seed_from(3);
        let mut child = parent.fork();
        let parent_next = parent.next_u64();
        let child_next = child.next_u64();
        assert_ne!(parent_next, child_next);
        // Forking is itself deterministic.
        let mut parent2 = SimRng::seed_from(3);
        let mut child2 = parent2.fork();
        assert_eq!(child2.next_u64(), child_next);
    }

    #[test]
    fn range_stays_in_bounds_and_covers_values() {
        let mut rng = SimRng::seed_from(11);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = rng.range_u64(10, 16);
            assert!((10..16).contains(&v));
            seen[(v - 10) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range should appear");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn range_rejects_empty() {
        SimRng::seed_from(0).range_u64(5, 5);
    }

    #[test]
    fn unit_f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = SimRng::seed_from(13);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.unit_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn chance_extremes_and_statistics() {
        let mut rng = SimRng::seed_from(17);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
        let hits = (0..10_000).filter(|_| rng.chance(0.2)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.2).abs() < 0.02, "empirical rate {rate}");
    }

    #[test]
    fn choose_and_shuffle_behave() {
        let mut rng = SimRng::seed_from(19);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        let items = [1, 2, 3, 4];
        for _ in 0..50 {
            assert!(items.contains(rng.choose(&items).unwrap()));
        }
        let mut data: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut data);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(data, (0..100).collect::<Vec<_>>(), "shuffle should permute");
    }

    #[test]
    fn sample_without_replacement() {
        let mut rng = SimRng::seed_from(23);
        let items: Vec<u32> = (0..50).collect();
        let picked = rng.sample(&items, 10);
        assert_eq!(picked.len(), 10);
        let unique: std::collections::HashSet<_> = picked.iter().collect();
        assert_eq!(unique.len(), 10, "sample must not repeat elements");
        // Asking for more than available returns everything.
        let all = rng.sample(&items, 100);
        assert_eq!(all.len(), 50);
    }

    #[test]
    fn distinct_u64_yields_unique_values() {
        let mut rng = SimRng::seed_from(29);
        let ids = rng.distinct_u64(1000);
        let unique: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(unique.len(), 1000);
    }

    #[test]
    fn index_covers_all_positions() {
        let mut rng = SimRng::seed_from(31);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.index(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
