//! Time series and summary statistics used by the experiment harness.
//!
//! The paper's figures plot the *proportion of missing entries* (leaf set or prefix
//! table) against the cycle number, on a logarithmic y axis, one curve per network
//! size, with several independent repetitions per size. The types here hold exactly
//! that: per-cycle series ([`Series`]), collections of repetitions
//! ([`SeriesBundle`]), and scalar summaries ([`Summary`], [`Histogram`]).

use std::fmt;

/// A single experiment trajectory: one value per cycle.
///
/// # Example
///
/// ```rust
/// use bss_util::stats::Series;
///
/// let mut s = Series::new("missing_leafset");
/// s.push(0, 1.0);
/// s.push(1, 0.25);
/// s.push(2, 0.0);
/// assert_eq!(s.len(), 3);
/// assert_eq!(s.final_value(), Some(0.0));
/// assert_eq!(s.first_cycle_at_or_below(0.5), Some(1));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    name: String,
    points: Vec<(u64, f64)>,
}

impl Series {
    /// Creates an empty series with a descriptive name.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The series name (used as a column header in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends an observation for `cycle`.
    pub fn push(&mut self, cycle: u64, value: f64) {
        self.points.push((cycle, value));
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no observations.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates over `(cycle, value)` observations in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.points.iter().copied()
    }

    /// The observations as a slice.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// The last observed value, if any.
    pub fn final_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// The last observed cycle, if any.
    pub fn final_cycle(&self) -> Option<u64> {
        self.points.last().map(|&(c, _)| c)
    }

    /// The first cycle at which the value is less than or equal to `threshold`
    /// (e.g. "first cycle with fewer than 1 % of entries missing"), or `None` if the
    /// threshold is never reached.
    pub fn first_cycle_at_or_below(&self, threshold: f64) -> Option<u64> {
        self.points
            .iter()
            .find(|&&(_, v)| v <= threshold)
            .map(|&(c, _)| c)
    }

    /// The value observed at `cycle`, if present.
    pub fn value_at(&self, cycle: u64) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(c, _)| c == cycle)
            .map(|&(_, v)| v)
    }
}

/// A collection of repeated trajectories of the same experiment (e.g. the paper's
/// 50 independent runs at N = 2^14), supporting per-cycle aggregation.
#[derive(Clone, Debug, Default)]
pub struct SeriesBundle {
    runs: Vec<Series>,
}

impl SeriesBundle {
    /// Creates an empty bundle.
    pub fn new() -> Self {
        SeriesBundle { runs: Vec::new() }
    }

    /// Adds a completed run.
    pub fn push(&mut self, run: Series) {
        self.runs.push(run);
    }

    /// Number of runs in the bundle.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// Whether the bundle contains no runs.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The individual runs.
    pub fn runs(&self) -> &[Series] {
        &self.runs
    }

    /// The largest cycle index present in any run.
    pub fn max_cycle(&self) -> u64 {
        self.runs
            .iter()
            .filter_map(Series::final_cycle)
            .max()
            .unwrap_or(0)
    }

    /// Per-cycle mean across runs. Runs that have already converged (and therefore
    /// stopped recording) are treated as contributing their final value, mirroring
    /// how the paper draws curves that simply end at convergence.
    pub fn mean_per_cycle(&self) -> Series {
        let mut out = Series::new(format!(
            "mean({})",
            self.runs.first().map(Series::name).unwrap_or("empty")
        ));
        if self.runs.is_empty() {
            return out;
        }
        for cycle in 0..=self.max_cycle() {
            let mut sum = 0.0;
            let mut count = 0usize;
            for run in &self.runs {
                let value = run.value_at(cycle).or_else(|| {
                    run.final_cycle()
                        .filter(|&fc| fc < cycle)
                        .and_then(|_| run.final_value())
                });
                if let Some(v) = value {
                    sum += v;
                    count += 1;
                }
            }
            if count > 0 {
                out.push(cycle, sum / count as f64);
            }
        }
        out
    }

    /// Mean, across runs, of the first cycle at which the value drops to or below
    /// `threshold`. Runs that never reach the threshold are ignored; returns `None`
    /// if no run reaches it.
    pub fn mean_convergence_cycle(&self, threshold: f64) -> Option<f64> {
        let cycles: Vec<u64> = self
            .runs
            .iter()
            .filter_map(|r| r.first_cycle_at_or_below(threshold))
            .collect();
        if cycles.is_empty() {
            None
        } else {
            Some(cycles.iter().sum::<u64>() as f64 / cycles.len() as f64)
        }
    }
}

/// Scalar summary of a sample: count, mean, standard deviation, extremes and
/// selected percentiles.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean (0 when the sample is empty).
    pub mean: f64,
    /// Population standard deviation (0 when the sample is empty).
    pub std_dev: f64,
    /// Minimum observation (0 when the sample is empty).
    pub min: f64,
    /// Maximum observation (0 when the sample is empty).
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Summary {
    /// Computes a summary of `values`. An empty slice yields an all-zero summary
    /// with `count == 0`.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
                p95: 0.0,
            };
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summary input"));
        Summary {
            count,
            mean,
            std_dev: variance.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median: percentile_of_sorted(&sorted, 0.50),
            p95: percentile_of_sorted(&sorted, 0.95),
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} std={:.4} min={:.4} median={:.4} p95={:.4} max={:.4}",
            self.count, self.mean, self.std_dev, self.min, self.median, self.p95, self.max
        )
    }
}

/// Percentile (nearest-rank with linear interpolation) of an already sorted slice.
///
/// # Panics
///
/// Panics if the slice is empty or `q` is outside `[0, 1]`.
pub fn percentile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A fixed-bucket streaming histogram over `u64` observations with percentile
/// queries — the single bucket implementation behind both [`Histogram`] and
/// the per-cycle traffic latency series.
///
/// Two sizing modes share the code path:
///
/// * [`StreamingHistogram::with_buckets`] allocates every bucket up front, so
///   recording is allocation-free from the first observation on and the
///   histogram can be [`StreamingHistogram::reset`] between measurement
///   windows without touching the allocator;
/// * [`StreamingHistogram::growable`] starts empty and grows on demand up to
///   a bucket cap (the legacy [`Histogram`] behaviour).
///
/// In both modes observations past the last bucket saturate into it, so a
/// lone outlier (a u64 latency, say) costs O(1) memory instead of resizing
/// `counts` to `value / bucket_width + 1` entries.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamingHistogram {
    bucket_width: u64,
    /// Bucket-count cap, saturating overflow bucket included.
    limit: usize,
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

impl StreamingHistogram {
    /// Creates a pre-sized histogram with `buckets` buckets of width
    /// `bucket_width` (`[0, w)`, `[w, 2w)`, ..., last bucket saturating).
    /// Recording never allocates after construction.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` or `buckets` is zero.
    pub fn with_buckets(bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be positive");
        assert!(buckets > 0, "bucket count must be positive");
        StreamingHistogram {
            bucket_width,
            limit: buckets,
            counts: vec![0; buckets],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Creates an initially empty histogram that grows on demand, up to
    /// `limit` buckets (the last one saturating).
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` or `limit` is zero.
    pub fn growable(bucket_width: u64, limit: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be positive");
        assert!(limit > 0, "bucket limit must be positive");
        StreamingHistogram {
            bucket_width,
            limit,
            counts: Vec::new(),
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let bucket = ((value / self.bucket_width) as usize).min(self.limit - 1);
        if bucket >= self.counts.len() {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum += u128::from(value);
        self.max = self.max.max(value);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest observation recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The bucket width the histogram was constructed with.
    pub fn bucket_width(&self) -> u64 {
        self.bucket_width
    }

    /// Number of bucket slots currently allocated (at most the construction
    /// limit; useful for asserting the allocation-free property).
    pub fn allocated_buckets(&self) -> usize {
        self.counts.len()
    }

    /// The nearest-rank `q`-percentile (`q` in `[0, 1]`), resolved to the
    /// lower bound of the bucket holding that rank — exact for integer data
    /// recorded at bucket width 1. Returns 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return (bucket as u64 * self.bucket_width) as f64;
            }
        }
        (self.max / self.bucket_width * self.bucket_width) as f64
    }

    /// Zeroes every counter while keeping the bucket allocation, so a
    /// pre-sized histogram can be reused across measurement windows without
    /// touching the allocator.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|count| *count = 0);
        self.total = 0;
        self.sum = 0;
        self.max = 0;
    }

    /// Iterates over `(bucket_lower_bound, count)` pairs for non-empty buckets.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(move |(i, &c)| (i as u64 * self.bucket_width, c))
    }
}

/// A fixed-width histogram over `u64` observations, used for in-degree
/// distributions and message-size accounting.
///
/// A thin wrapper over [`StreamingHistogram`] in its growable mode: bucket
/// storage is bounded by [`Histogram::MAX_BUCKETS`], past which observations
/// saturate into a single overflow bucket.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: StreamingHistogram,
}

impl Histogram {
    /// Upper bound on the number of distinct buckets, overflow bucket
    /// included. Values mapping to bucket `MAX_BUCKETS - 1` or beyond all
    /// land in that final saturating bucket.
    pub const MAX_BUCKETS: usize = 4096;

    /// Creates a histogram whose buckets are `[0, w)`, `[w, 2w)`, ...
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero.
    pub fn new(bucket_width: u64) -> Self {
        Histogram {
            inner: StreamingHistogram::growable(bucket_width, Self::MAX_BUCKETS),
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.inner.record(value);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        self.inner.mean()
    }

    /// Largest observation recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.inner.max()
    }

    /// The nearest-rank `q`-percentile (see [`StreamingHistogram::percentile`]).
    pub fn percentile(&self, q: f64) -> f64 {
        self.inner.percentile(q)
    }

    /// Number of bucket slots currently allocated.
    pub fn allocated_buckets(&self) -> usize {
        self.inner.allocated_buckets()
    }

    /// Iterates over `(bucket_lower_bound, count)` pairs for non-empty buckets.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.inner.buckets()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_basic_accessors() {
        let mut s = Series::new("x");
        assert!(s.is_empty());
        assert_eq!(s.final_value(), None);
        s.push(0, 1.0);
        s.push(1, 0.5);
        s.push(3, 0.1);
        assert_eq!(s.len(), 3);
        assert_eq!(s.name(), "x");
        assert_eq!(s.final_value(), Some(0.1));
        assert_eq!(s.final_cycle(), Some(3));
        assert_eq!(s.value_at(1), Some(0.5));
        assert_eq!(s.value_at(2), None);
        assert_eq!(s.points().len(), 3);
        assert_eq!(s.iter().count(), 3);
    }

    #[test]
    fn first_cycle_at_or_below_finds_threshold_crossing() {
        let mut s = Series::new("x");
        for (c, v) in [(0, 1.0), (1, 0.4), (2, 0.04), (3, 0.0)] {
            s.push(c, v);
        }
        assert_eq!(s.first_cycle_at_or_below(0.5), Some(1));
        assert_eq!(s.first_cycle_at_or_below(0.01), Some(3));
        assert_eq!(s.first_cycle_at_or_below(-1.0), None);
    }

    #[test]
    fn bundle_mean_extends_converged_runs() {
        let mut bundle = SeriesBundle::new();
        let mut a = Series::new("m");
        a.push(0, 1.0);
        a.push(1, 0.0); // converged at cycle 1
        let mut b = Series::new("m");
        b.push(0, 1.0);
        b.push(1, 0.5);
        b.push(2, 0.0);
        bundle.push(a);
        bundle.push(b);
        assert_eq!(bundle.len(), 2);
        assert_eq!(bundle.max_cycle(), 2);
        let mean = bundle.mean_per_cycle();
        assert_eq!(mean.value_at(0), Some(1.0));
        assert_eq!(mean.value_at(1), Some(0.25));
        // Run `a` contributes its final value (0.0) at cycle 2.
        assert_eq!(mean.value_at(2), Some(0.0));
    }

    #[test]
    fn bundle_convergence_cycle() {
        let mut bundle = SeriesBundle::new();
        for final_cycle in [2u64, 4u64] {
            let mut s = Series::new("m");
            for c in 0..=final_cycle {
                s.push(c, if c == final_cycle { 0.0 } else { 1.0 });
            }
            bundle.push(s);
        }
        assert_eq!(bundle.mean_convergence_cycle(0.0), Some(3.0));
        assert_eq!(bundle.mean_convergence_cycle(-1.0), None);
    }

    #[test]
    fn empty_bundle_behaves() {
        let bundle = SeriesBundle::new();
        assert!(bundle.is_empty());
        assert_eq!(bundle.max_cycle(), 0);
        assert!(bundle.mean_per_cycle().is_empty());
        assert_eq!(bundle.mean_convergence_cycle(0.5), None);
        assert!(bundle.runs().is_empty());
    }

    #[test]
    fn summary_of_known_sample() {
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::of(&values);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
        let rendered = s.to_string();
        assert!(rendered.contains("n=8"));
    }

    #[test]
    fn summary_of_empty_sample_is_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_of_sorted(&sorted, 0.0), 1.0);
        assert_eq!(percentile_of_sorted(&sorted, 1.0), 4.0);
        assert!((percentile_of_sorted(&sorted, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(percentile_of_sorted(&[42.0], 0.3), 42.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty() {
        percentile_of_sorted(&[], 0.5);
    }

    #[test]
    fn histogram_counts_and_statistics() {
        let mut h = Histogram::new(10);
        for v in [0u64, 5, 9, 10, 25, 25, 99] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max(), 99);
        assert!((h.mean() - (5 + 9 + 10 + 25 + 25 + 99) as f64 / 7.0).abs() < 1e-12);
        let buckets: Vec<_> = h.buckets().collect();
        assert!(buckets.contains(&(0, 3)));
        assert!(buckets.contains(&(10, 1)));
        assert!(buckets.contains(&(20, 2)));
        assert!(buckets.contains(&(90, 1)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn histogram_rejects_zero_width() {
        Histogram::new(0);
    }

    #[test]
    fn histogram_outlier_saturates_into_overflow_bucket() {
        let mut h = Histogram::new(10);
        h.record(3);
        h.record(u64::MAX);
        // Storage stays bounded by MAX_BUCKETS rather than resizing to
        // u64::MAX / 10 + 1 entries.
        assert!(h.allocated_buckets() <= Histogram::MAX_BUCKETS);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        let overflow_lower = (Histogram::MAX_BUCKETS as u64 - 1) * 10;
        let buckets: Vec<_> = h.buckets().collect();
        assert!(buckets.contains(&(0, 1)));
        assert!(buckets.contains(&(overflow_lower, 1)));
        // A second outlier lands in the same saturating bucket.
        h.record(u64::MAX - 1);
        assert!(h.allocated_buckets() <= Histogram::MAX_BUCKETS);
        assert!(h.buckets().any(|(lo, c)| lo == overflow_lower && c == 2));
    }

    #[test]
    fn streaming_histogram_is_allocation_free_once_sized() {
        let mut h = StreamingHistogram::with_buckets(1, 64);
        assert_eq!(h.allocated_buckets(), 64);
        for value in 0..200u64 {
            h.record(value);
        }
        // Storage never grew past the construction size; the tail saturated.
        assert_eq!(h.allocated_buckets(), 64);
        assert_eq!(h.count(), 200);
        assert_eq!(h.max(), 199);
        assert!(h.buckets().any(|(lo, c)| lo == 63 && c == 137));
        h.reset();
        assert_eq!(h.allocated_buckets(), 64);
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(0.5), 0.0);
    }

    #[test]
    fn streaming_percentiles_are_exact_for_unit_width_integers() {
        // 1..=100 at bucket width 1: the nearest-rank percentile of integers.
        let mut h = StreamingHistogram::with_buckets(1, 128);
        for value in 1..=100u64 {
            h.record(value);
        }
        assert_eq!(h.percentile(0.50), 50.0);
        assert_eq!(h.percentile(0.95), 95.0);
        assert_eq!(h.percentile(0.99), 99.0);
        assert_eq!(h.percentile(1.0), 100.0);
        assert_eq!(h.percentile(0.0), 1.0);
        assert!((h.mean() - 50.5).abs() < 1e-12);
    }

    #[test]
    fn streaming_percentile_resolves_to_bucket_lower_bound() {
        let mut h = StreamingHistogram::with_buckets(10, 16);
        for value in [3u64, 14, 27, 150, 152] {
            h.record(value);
        }
        assert_eq!(h.percentile(0.5), 20.0);
        // The two saturated outliers dominate the tail.
        assert_eq!(h.percentile(1.0), 150.0);
        assert_eq!(h.bucket_width(), 10);
    }

    #[test]
    fn streaming_percentile_on_skewed_mass() {
        let mut h = StreamingHistogram::with_buckets(1, 8);
        for _ in 0..99 {
            h.record(1);
        }
        h.record(5);
        assert_eq!(h.percentile(0.5), 1.0);
        assert_eq!(h.percentile(0.99), 1.0);
        assert_eq!(h.percentile(1.0), 5.0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn streaming_percentile_rejects_bad_quantile() {
        StreamingHistogram::with_buckets(1, 4).percentile(1.5);
    }

    #[test]
    #[should_panic(expected = "bucket count must be positive")]
    fn streaming_histogram_rejects_zero_buckets() {
        StreamingHistogram::with_buckets(1, 0);
    }

    #[test]
    fn histogram_percentile_delegates_to_streaming_core() {
        let mut h = Histogram::new(1);
        for value in 0..10u64 {
            h.record(value);
        }
        assert_eq!(h.percentile(0.5), 4.0);
        assert_eq!(h.percentile(1.0), 9.0);
    }
}
