//! Flat, arena-backed storage for gossip views, and partial-selection ranking.
//!
//! Every gossip protocol in this workspace keeps one bounded *view* (a small
//! ordered set of [`Descriptor`]s) per simulated node. Storing those views as
//! `Vec<Option<Vec<Descriptor<_>>>>` costs one heap allocation per node plus a
//! pointer chase per access, which dominates the simulator's hot path at large
//! network sizes. [`ViewArena`] instead packs all views into one contiguous
//! allocation with a fixed-capacity slot per node, so reading a view is a single
//! bounded slice index and writing one never allocates.
//!
//! [`rank_top_by`] is the companion CPU optimisation: merge buffers only ever
//! need their best `keep` elements in order, so instead of sorting the whole
//! buffer it partitions with `select_nth_unstable_by` and sorts just the front.
//! For buffers already within capacity it skips sorting entirely when they are
//! already ordered (the common case for views re-normalised every cycle).

use std::cmp::Ordering;

/// Contiguous storage of bounded per-node views: one `capacity`-sized slot per
/// node in a single allocation, plus a live-length and an occupancy flag per
/// slot.
///
/// The element type is generic: protocols store either full
/// [`Descriptor`](crate::descriptor::Descriptor)s or, on the simulator's hot
/// path, eight-byte [`PackedDescriptor`](crate::descriptor::PackedDescriptor)s
/// so a million 30-entry views fit in ~240 MB instead of ~720 MB.
///
/// An *unoccupied* slot models "this node holds no view" (dead or never
/// initialised) and is distinct from an occupied slot of length zero.
///
/// # Example
///
/// ```rust
/// use bss_util::descriptor::PackedDescriptor;
/// use bss_util::view::ViewArena;
///
/// let mut arena: ViewArena<PackedDescriptor> = ViewArena::new(4);
/// assert!(arena.get(7).is_none());
/// arena.set(7, &[PackedDescriptor::new(9, 0)]);
/// assert_eq!(arena.get(7).unwrap().len(), 1);
/// arena.clear(7);
/// assert!(arena.get(7).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct ViewArena<E> {
    capacity: usize,
    entries: Vec<E>,
    lens: Vec<u32>,
    occupied: Vec<bool>,
    occupied_count: usize,
}

impl<E: Copy + Default> ViewArena<E> {
    /// Creates an empty arena whose slots hold at most `capacity` descriptors.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "view capacity must be positive");
        ViewArena {
            capacity,
            entries: Vec::new(),
            lens: Vec::new(),
            occupied: Vec::new(),
            occupied_count: 0,
        }
    }

    /// The fixed per-slot capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of slots the arena currently addresses.
    pub fn slots(&self) -> usize {
        self.lens.len()
    }

    /// Number of occupied slots.
    pub fn occupied_count(&self) -> usize {
        self.occupied_count
    }

    /// Whether `slot` is occupied (holds a view, possibly empty).
    pub fn is_occupied(&self, slot: usize) -> bool {
        self.occupied.get(slot).copied().unwrap_or(false)
    }

    /// The view stored in `slot`, or `None` when the slot is unoccupied or out
    /// of range.
    #[inline]
    pub fn get(&self, slot: usize) -> Option<&[E]> {
        if !self.is_occupied(slot) {
            return None;
        }
        let start = slot * self.capacity;
        Some(&self.entries[start..start + self.lens[slot] as usize])
    }

    /// Stores `view` in `slot`, growing the arena as needed and marking the
    /// slot occupied.
    ///
    /// # Panics
    ///
    /// Panics if `view` exceeds the per-slot capacity.
    pub fn set(&mut self, slot: usize, view: &[E]) {
        assert!(
            view.len() <= self.capacity,
            "view of {} entries exceeds slot capacity {}",
            view.len(),
            self.capacity
        );
        self.ensure(slot);
        let start = slot * self.capacity;
        self.entries[start..start + view.len()].copy_from_slice(view);
        self.lens[slot] = view.len() as u32;
        if !self.occupied[slot] {
            self.occupied[slot] = true;
            self.occupied_count += 1;
        }
    }

    /// Marks `slot` unoccupied (a no-op for slots the arena never addressed).
    pub fn clear(&mut self, slot: usize) {
        if slot < self.occupied.len() && self.occupied[slot] {
            self.occupied[slot] = false;
            self.lens[slot] = 0;
            self.occupied_count -= 1;
        }
    }

    fn ensure(&mut self, slot: usize) {
        if slot >= self.lens.len() {
            let slots = slot + 1;
            self.entries.resize(slots * self.capacity, E::default());
            self.lens.resize(slots, 0);
            self.occupied.resize(slots, false);
        }
    }
}

/// Keeps the best `keep` elements of `items` in sorted order (according to
/// `cmp`, ascending) and discards the rest.
///
/// Produces exactly the result of `items.sort_by(cmp); items.truncate(keep)`
/// whenever `cmp` is a strict total order over the buffer (no two elements
/// compare equal — the callers guarantee this by breaking ties on the unique
/// node identifier), but does O(len + keep·log keep) work instead of
/// O(len·log len), and skips sorting entirely when the buffer is already
/// within `keep` and ordered.
pub fn rank_top_by<T, F>(items: &mut Vec<T>, keep: usize, mut cmp: F)
where
    F: FnMut(&T, &T) -> Ordering,
{
    if items.len() > keep {
        if keep == 0 {
            items.clear();
            return;
        }
        // Partition so the best `keep` elements occupy the front, then order
        // just that prefix.
        items.select_nth_unstable_by(keep - 1, &mut cmp);
        items[..keep].sort_unstable_by(&mut cmp);
        items.truncate(keep);
    } else if !is_sorted_by(items, &mut cmp) {
        items.sort_unstable_by(&mut cmp);
    }
}

/// Whether `items` is already sorted ascending under `cmp`.
fn is_sorted_by<T, F>(items: &[T], cmp: &mut F) -> bool
where
    F: FnMut(&T, &T) -> Ordering,
{
    items
        .windows(2)
        .all(|pair| cmp(&pair[0], &pair[1]) != Ordering::Greater)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::Descriptor;
    use crate::id::NodeId;

    fn d(id: u64, ts: u64) -> Descriptor<u32> {
        Descriptor::new(NodeId::new(id), id as u32, ts)
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_is_rejected() {
        let _: ViewArena<Descriptor<u32>> = ViewArena::new(0);
    }

    #[test]
    fn unoccupied_slots_are_distinct_from_empty_views() {
        let mut arena: ViewArena<Descriptor<u32>> = ViewArena::new(3);
        assert!(arena.get(0).is_none());
        assert!(!arena.is_occupied(0));
        arena.set(0, &[]);
        assert!(arena.is_occupied(0));
        assert_eq!(arena.get(0), Some(&[][..]));
        assert_eq!(arena.occupied_count(), 1);
    }

    #[test]
    fn set_get_clear_roundtrip_and_growth() {
        let mut arena: ViewArena<Descriptor<u32>> = ViewArena::new(2);
        arena.set(5, &[d(1, 10), d(2, 20)]);
        assert_eq!(arena.slots(), 6);
        assert_eq!(arena.get(5).unwrap(), &[d(1, 10), d(2, 20)]);
        // Intermediate slots exist but are unoccupied.
        assert!(arena.get(3).is_none());
        // Overwrite with a shorter view.
        arena.set(5, &[d(9, 1)]);
        assert_eq!(arena.get(5).unwrap(), &[d(9, 1)]);
        assert_eq!(arena.occupied_count(), 1);
        arena.clear(5);
        assert!(arena.get(5).is_none());
        assert_eq!(arena.occupied_count(), 0);
        // Clearing out-of-range or already-clear slots is a no-op.
        arena.clear(5);
        arena.clear(100);
        assert_eq!(arena.occupied_count(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds slot capacity")]
    fn oversized_views_are_rejected() {
        let mut arena: ViewArena<Descriptor<u32>> = ViewArena::new(1);
        arena.set(0, &[d(1, 0), d(2, 0)]);
    }

    fn freshest_first(a: &Descriptor<u32>, b: &Descriptor<u32>) -> Ordering {
        b.timestamp()
            .cmp(&a.timestamp())
            .then_with(|| a.id().cmp(&b.id()))
    }

    #[test]
    fn rank_top_matches_full_sort_and_truncate() {
        let mut buffer = vec![d(3, 5), d(1, 9), d(4, 1), d(2, 9), d(5, 7)];
        let mut expected = buffer.clone();
        expected.sort_by(freshest_first);
        expected.truncate(3);
        rank_top_by(&mut buffer, 3, freshest_first);
        assert_eq!(buffer, expected);
    }

    #[test]
    fn rank_top_sorts_small_unsorted_buffers_in_place() {
        let mut buffer = vec![d(2, 1), d(1, 5)];
        rank_top_by(&mut buffer, 10, freshest_first);
        assert_eq!(buffer, vec![d(1, 5), d(2, 1)]);
    }

    #[test]
    fn rank_top_keep_zero_empties_the_buffer() {
        let mut buffer = vec![d(1, 1), d(2, 2)];
        rank_top_by(&mut buffer, 0, freshest_first);
        assert!(buffer.is_empty());
    }

    #[test]
    fn rank_top_on_empty_and_exact_capacity() {
        let mut empty: Vec<Descriptor<u32>> = Vec::new();
        rank_top_by(&mut empty, 4, freshest_first);
        assert!(empty.is_empty());
        let mut exact = vec![d(1, 3), d(2, 2), d(3, 1)];
        rank_top_by(&mut exact, 3, freshest_first);
        assert_eq!(exact, vec![d(1, 3), d(2, 2), d(3, 1)]);
    }
}
