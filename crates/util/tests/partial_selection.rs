//! Property tests: the partial-selection ranking used on the gossip merge hot
//! path ([`bss_util::view::rank_top_by`]) must be element-for-element
//! equivalent to the full-sort-then-truncate baseline it replaced, for every
//! comparator the protocols actually use, across random buffers (seeds × sizes).

use bss_util::descriptor::{dedup_freshest, Descriptor};
use bss_util::id::NodeId;
use bss_util::view::rank_top_by;
use proptest::prelude::*;

fn descriptor() -> impl Strategy<Value = Descriptor<u32>> {
    // Small id/timestamp domains force duplicates and ranking ties, which is
    // where a partial selection could diverge from a full sort.
    (0u64..64, any::<u32>(), 0u64..8)
        .prop_map(|(id, addr, ts)| Descriptor::new(NodeId::new(id), addr, ts))
}

/// NEWSCAST's view order: freshest first, ties broken by identifier.
fn freshest_first(a: &Descriptor<u32>, b: &Descriptor<u32>) -> std::cmp::Ordering {
    b.timestamp()
        .cmp(&a.timestamp())
        .then_with(|| a.id().cmp(&b.id()))
}

/// A T-Man style ranking: ring distance from a base identifier, ties broken by
/// identifier.
fn ring_closest(base: NodeId) -> impl Fn(&Descriptor<u32>, &Descriptor<u32>) -> std::cmp::Ordering {
    move |a, b| {
        base.ring_distance(a.id())
            .cmp(&base.ring_distance(b.id()))
            .then_with(|| a.id().cmp(&b.id()))
    }
}

proptest! {
    #[test]
    fn newscast_view_merge_matches_the_full_sort_baseline(
        buffer in prop::collection::vec(descriptor(), 0..200),
        capacity in 1usize..40,
    ) {
        // The protocols always deduplicate before ranking, making the
        // comparator a strict total order — the regime rank_top_by promises
        // exact equivalence in.
        let mut merged = buffer;
        dedup_freshest(&mut merged);

        let mut baseline = merged.clone();
        baseline.sort_by(freshest_first);
        baseline.truncate(capacity);

        rank_top_by(&mut merged, capacity, freshest_first);
        prop_assert_eq!(merged, baseline);
    }

    #[test]
    fn tman_ranking_merge_matches_the_full_sort_baseline(
        buffer in prop::collection::vec(descriptor(), 0..200),
        base in any::<u64>(),
        keep in 0usize..50,
    ) {
        let base = NodeId::new(base);
        let mut merged = buffer;
        dedup_freshest(&mut merged);

        let mut baseline = merged.clone();
        baseline.sort_by(ring_closest(base));
        baseline.truncate(keep);

        rank_top_by(&mut merged, keep, ring_closest(base));
        prop_assert_eq!(merged, baseline);
    }

    #[test]
    fn dedup_freshest_keeps_one_freshest_descriptor_per_id(
        buffer in prop::collection::vec(descriptor(), 0..300),
    ) {
        let mut deduped = buffer.clone();
        dedup_freshest(&mut deduped);

        // Unique ids, and each surviving descriptor carries its id's maximal
        // timestamp from the input.
        for (i, d) in deduped.iter().enumerate() {
            prop_assert!(deduped[..i].iter().all(|e| e.id() != d.id()));
            let freshest = buffer
                .iter()
                .filter(|e| e.id() == d.id())
                .map(Descriptor::timestamp)
                .max()
                .unwrap();
            prop_assert_eq!(d.timestamp(), freshest);
        }
        // First-occurrence order is preserved.
        let first_occurrences: Vec<NodeId> = {
            let mut seen = Vec::new();
            for d in &buffer {
                if !seen.contains(&d.id()) {
                    seen.push(d.id());
                }
            }
            seen
        };
        let kept_ids: Vec<NodeId> = deduped.iter().map(Descriptor::id).collect();
        prop_assert_eq!(kept_ids, first_occurrences);
    }
}
