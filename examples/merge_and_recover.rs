//! The scenarios that motivate the paper (§1–2): merging two resource pools and
//! recovering from a catastrophic failure — expressed as scenario timelines and
//! driven through the engine-agnostic experiment runner.
//!
//! Phase 1+2 is one timeline: a network partition that bootstraps two halves
//! independently and heals at cycle 20 (the merge). Phase 3 is a second
//! timeline: a catastrophic failure of 50 % of the nodes at cycle 5, measured
//! against the surviving membership. The same partition timeline is then run
//! again on the discrete-event engine to show that the result is not an
//! artifact of the synchronous cycle abstraction.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example merge_and_recover
//! ```

use bootstrapping_service::core::experiment::{Experiment, ExperimentConfig};
use bootstrapping_service::core::scenario::{
    Engine, LatencyModel, PartitionSpec, Phase, ScenarioEvent,
};

fn main() {
    let size = 1 << 10;
    let merge_at = 20;

    // ---- Phases 1+2: two pools bootstrap independently, then merge. ----
    // One timeline: the partition window's end *is* the merge. The perfection
    // stop waits for pending scenario transitions, so the run ends at the
    // first full-membership perfection after the heal.
    let merge_config = ExperimentConfig::builder()
        .network_size(size)
        .seed(7)
        .max_cycles(100)
        .event(ScenarioEvent::Partition {
            phase: Phase::new(0, merge_at),
            groups: PartitionSpec::IndexParity,
        })
        .build()
        .expect("valid configuration");
    let report = Experiment::new(merge_config.clone()).run();
    println!(
        "after {} partitioned cycles: {:.1}% of full-membership leaf entries missing \
         (each half is internally converged)",
        merge_at,
        report
            .leaf_series()
            .value_at(merge_at - 1)
            .unwrap_or(f64::NAN)
            * 100.0
    );
    match report.convergence_cycle() {
        Some(cycle) => println!(
            "merged network reached perfect tables {} cycles after the merge",
            cycle.saturating_sub(merge_at) + 1
        ),
        None => println!("the merged network did not reach perfect tables within the budget"),
    }

    // ---- Phase 3: catastrophic failure of half the nodes at cycle 5. ----
    // The protocol has no failure detector (the substrate's own maintenance
    // would take over after the bootstrap burst), so descriptors of dead nodes
    // linger; the report states the survivor-membership quality honestly.
    let recover_config = ExperimentConfig::builder()
        .network_size(size)
        .seed(8)
        .max_cycles(80)
        .event(ScenarioEvent::CatastrophicFailure {
            at_cycle: 5,
            fraction: 0.5,
        })
        .build()
        .expect("valid configuration");
    let report = Experiment::new(recover_config).run();
    match report.convergence_cycle() {
        Some(cycle) => println!(
            "after losing 50% of the nodes at cycle 5, the survivors had perfect tables \
             again {} cycles later",
            cycle - 5
        ),
        None => println!(
            "after losing 50% of the nodes at cycle 5, the survivors settled at \
             {:.1}% missing leaf entries (stale descriptors linger: the protocol \
             has no failure detector)",
            report.final_state().leaf_proportion() * 100.0
        ),
    }

    // ---- The same merge scenario, event-driven. ----
    // Identical timeline, different engine: nodes wake on timers at random
    // phases within Δ and messages travel with 10–100 ms latency.
    let mut event_config = merge_config;
    event_config.engine = Engine::Event {
        latency: LatencyModel::Uniform {
            min_millis: 10,
            max_millis: 100,
        },
    };
    let report = Experiment::new(event_config).run();
    match report.convergence_cycle() {
        Some(cycle) => println!(
            "event-driven replay of the merge: perfect tables {} cycles after the merge \
             (same scenario, latency-driven execution)",
            cycle.saturating_sub(merge_at) + 1
        ),
        None => println!("event-driven replay did not converge within the budget"),
    }
}
