//! The scenarios that motivate the paper (§1–2): merging two resource pools and
//! recovering from a catastrophic failure.
//!
//! Phase 1 bootstraps two partitioned halves of a network (a "split" pool).
//! Phase 2 heals the partition and measures how quickly the merged network reaches
//! perfect tables. Phase 3 kills 50 % of the nodes at once and re-measures
//! convergence towards the surviving membership — the "jump-start everything again
//! from the sampling service" story.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example merge_and_recover
//! ```

use bootstrapping_service::core::protocol::BootstrapProtocol;
use bootstrapping_service::sampling::sampler::OracleSampler;
use bootstrapping_service::sim::churn::CatastrophicFailure;
use bootstrapping_service::sim::engine::cycle::CycleEngine;
use bootstrapping_service::sim::network::Network;
use bootstrapping_service::sim::transport::PartitionTransport;
use bootstrapping_service::util::config::BootstrapParams;
use bootstrapping_service::util::rng::SimRng;
use std::ops::ControlFlow;

fn main() {
    let size = 1 << 10;
    let params = BootstrapParams::paper_default();

    // ---- Phase 1: two pools bootstrap independently (network partition). ----
    let mut rng = SimRng::seed_from(7);
    let network = Network::with_random_ids(size, &mut rng);
    let groups: Vec<u32> = (0..size as u32).map(|index| index % 2).collect();
    let mut engine = CycleEngine::new(network, rng)
        .with_transport(Box::new(PartitionTransport::new(groups.clone())));
    let mut protocol = BootstrapProtocol::new(params, OracleSampler::new());
    protocol.init_all(engine.context_mut());
    let oracle = protocol.oracle_for(engine.context());

    engine.run(&mut protocol, 20);
    let split_state = protocol.measure(&oracle, engine.context());
    println!(
        "after 20 partitioned cycles: {:.1}% of full-membership leaf entries missing \
         (each half is internally converged)",
        split_state.leaf_proportion() * 100.0
    );

    // ---- Phase 2: the pools merge (partition heals). ----
    let mut healed = PartitionTransport::new(groups);
    healed.set_active(false);
    engine.context_mut().transport = Box::new(healed);
    let mut merge_cycles = 0;
    engine.run_with_observer(&mut protocol, 60, |protocol, ctx, _| {
        merge_cycles += 1;
        if protocol.measure(&oracle, ctx).is_perfect() {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    println!("merged network reached perfect tables {merge_cycles} cycles after the merge");

    // ---- Phase 3: catastrophic failure of half the nodes, then re-bootstrap. ----
    let mut rng = SimRng::seed_from(8);
    let network = Network::with_random_ids(size, &mut rng);
    let mut engine =
        CycleEngine::new(network, rng).with_churn(Box::new(CatastrophicFailure::new(5, 0.5)));
    let mut protocol = BootstrapProtocol::new(params, OracleSampler::new());
    protocol.init_all(engine.context_mut());
    let mut recovery_cycles = None;
    engine.run_with_observer(&mut protocol, 80, |protocol, ctx, cycle| {
        if cycle < 5 {
            return ControlFlow::Continue(());
        }
        // Measure against the *surviving* membership.
        let oracle = protocol.oracle_for(ctx);
        if protocol.measure(&oracle, ctx).is_perfect() {
            recovery_cycles = Some(cycle - 5);
            return ControlFlow::Break(());
        }
        ControlFlow::Continue(())
    });
    match recovery_cycles {
        Some(cycles) => println!(
            "after losing 50% of the nodes at cycle 5, the survivors had perfect tables \
             again {cycles} cycles later"
        ),
        None => println!("the survivors did not fully recover within the budget"),
    }
}
