//! Quickstart: bootstrap a structured overlay from scratch and inspect the result.
//!
//! This is the paper's headline scenario in miniature: a pool of nodes with only a
//! functional peer sampling service jump-starts perfect Pastry-style leaf sets and
//! prefix routing tables in a handful of gossip cycles.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bootstrapping_service::core::experiment::{Experiment, ExperimentConfig, SamplerChoice};
use bootstrapping_service::util::config::NewscastParams;

fn main() {
    // A 1024-node network, paper parameters (b = 4, k = 3, c = 20, cr = 30),
    // with a real NEWSCAST instance providing the random samples.
    let config = ExperimentConfig::builder()
        .network_size(1 << 10)
        .seed(2026)
        .sampler(SamplerChoice::Newscast(NewscastParams::paper_default()))
        .max_cycles(60)
        .build()
        .expect("valid configuration");

    println!(
        "bootstrapping a network of {} nodes ...",
        config.network_size
    );
    let (outcome, snapshot) = Experiment::new(config).run_with_snapshot();

    println!("{outcome}");
    println!();
    println!("cycle\tmissing leaf-set entries\tmissing prefix-table entries");
    for (cycle, leaf) in outcome.leaf_series().iter() {
        let prefix = outcome.prefix_series().value_at(cycle).unwrap_or(f64::NAN);
        println!("{cycle}\t{leaf:.3e}\t{prefix:.3e}");
    }
    println!();
    println!(
        "traffic: {} requests, mean message size {:.1} descriptors (max {})",
        outcome.traffic().requests_sent,
        outcome.traffic().mean_message_size(),
        outcome.traffic().max_message_size()
    );

    // Peek at one node's freshly built state: this is exactly what a Pastry /
    // Kademlia / Bamboo implementation would take over and maintain from here on.
    let node = snapshot.node_at(0).expect("snapshot is non-empty");
    println!();
    println!("node {} after bootstrap:", node.id());
    println!("  leaf set: {} entries", node.leaf_set().len());
    println!(
        "  prefix table: {} entries in {} occupied slots (deepest row {})",
        node.prefix_table().len(),
        node.prefix_table().occupied_slots(),
        node.prefix_table().deepest_occupied_row().unwrap_or(0)
    );
}
