//! Route lookups over freshly bootstrapped tables.
//!
//! The paper's claim is that the constructed leaf sets and prefix tables are
//! exactly what Pastry, Kademlia, Tapestry and Bamboo need. This example closes the
//! loop: bootstrap a network, then route random lookups over the result with a
//! Pastry-style prefix router and a Kademlia-style XOR router, and compare the hop
//! counts with an idealised Chord ring built from global knowledge.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example route_over_bootstrap
//! ```

use bootstrapping_service::core::experiment::{Experiment, ExperimentConfig};
use bootstrapping_service::overlay::lookup::LookupEvaluator;

fn main() {
    let config = ExperimentConfig::builder()
        .network_size(1 << 11)
        .seed(99)
        .max_cycles(60)
        .build()
        .expect("valid configuration");

    println!("bootstrapping {} nodes ...", config.network_size);
    let (outcome, snapshot) = Experiment::new(config).run_with_snapshot();
    println!("{outcome}");
    println!();

    let mut evaluator = LookupEvaluator::new(snapshot, 4242);
    println!("routing 1000 random lookups with each router:");
    for report in evaluator.evaluate_all(1000) {
        println!("  {report}");
    }
    println!();
    println!(
        "a perfect bootstrap delivers 100% of lookups, with prefix routing using \
         O(log_16 N) hops — on par with the idealised Chord baseline."
    );
}
