//! Bootstrap a real cluster of UDP peers on localhost.
//!
//! The simulator results (Figures 3 and 4) use the cycle-driven engine; this
//! example runs the very same node-local protocol over real sockets and threads,
//! which is how a deployment would actually use the bootstrapping service.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example udp_cluster
//! ```

use bootstrapping_service::net::cluster::{Cluster, ClusterConfig};
use std::time::{Duration, Instant};

fn main() {
    let config = ClusterConfig {
        size: 24,
        seed: 7,
        ..ClusterConfig::default()
    };
    println!("spawning {} UDP peers on localhost ...", config.size);
    let cluster = match Cluster::spawn(config) {
        Ok(cluster) => cluster,
        Err(error) => {
            eprintln!("cannot bind loopback UDP sockets in this environment: {error}");
            return;
        }
    };

    let started = Instant::now();
    let converged = cluster.wait_for_convergence(Duration::from_secs(30));
    let state = cluster.measure();
    println!(
        "after {:.1}s: converged = {converged} (missing leaf entries: {}, missing prefix entries: {})",
        started.elapsed().as_secs_f64(),
        state.leaf_missing,
        state.prefix_missing
    );

    if let Some(peer) = cluster.peers().first() {
        let snapshot = peer.state_snapshot();
        println!(
            "peer {} @ {}: leaf set {} entries, prefix table {} entries, {} exchanges initiated",
            peer.id(),
            peer.address(),
            snapshot.leaf_set().len(),
            snapshot.prefix_table().len(),
            peer.exchanges_initiated()
        );
    }
    cluster.shutdown();
}
