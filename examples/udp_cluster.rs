//! Bootstrap a real cluster of UDP peers on localhost.
//!
//! The simulator results (Figures 3 and 4) use the cycle-driven engine; this
//! example runs the very same clocked protocol core over real sockets, which
//! is how a deployment would actually use the bootstrapping service. Both
//! transport modes are exercised: a thread-per-peer cluster (one socket and
//! two protocol threads per node, the faithful deployment shape) and the
//! single-loop driver (one thread polling hundreds of in-process nodes, the
//! shape that scales to 512+ peers on one machine — see the `cluster_net`
//! bench).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example udp_cluster
//! ```

use bootstrapping_service::net::cluster::{Cluster, ClusterConfig, ClusterMode};
use std::time::Duration;

fn main() {
    for (mode, size) in [(ClusterMode::ThreadPerPeer, 24), (ClusterMode::Driver, 128)] {
        let config = ClusterConfig {
            size,
            seed: 7,
            mode,
            ..ClusterConfig::default()
        };
        println!(
            "spawning {size} UDP peers on localhost ({} mode) ...",
            mode.label()
        );
        let cluster = match Cluster::spawn(config) {
            Ok(cluster) => cluster,
            Err(error) => {
                eprintln!("cannot bind loopback UDP sockets in this environment: {error}");
                return;
            }
        };

        // `monitor` samples convergence until the oracle says every table is
        // perfect (or the deadline passes) and returns the wire-side twin of
        // the simulator's RunReport.
        let report = cluster.monitor(Duration::from_millis(50), Duration::from_secs(60));
        println!(
            "  converged = {} after {} ms ({:.0} datagrams/s on the wire)",
            report.converged,
            report.convergence_millis.unwrap_or(report.elapsed_millis),
            report.datagrams_per_second()
        );

        if let Some(peer) = cluster.peers().first() {
            let snapshot = peer.state_snapshot();
            println!(
                "  peer {} @ {}: leaf set {} entries, prefix table {} entries, {} exchanges initiated",
                peer.id(),
                peer.address(),
                snapshot.leaf_set().len(),
                snapshot.prefix_table().len(),
                peer.exchanges_initiated()
            );
        }
        cluster.shutdown();
    }
}
