//! # bootstrapping-service — facade crate
//!
//! A from-scratch Rust reproduction of *"The Bootstrapping Service"* (Jelasity,
//! Montresor, Babaoglu; ICDCS Workshops 2006): a gossip protocol that jump-starts
//! prefix-table based routing substrates (Pastry / Kademlia / Tapestry / Bamboo
//! style) on top of the NEWSCAST peer sampling service.
//!
//! This crate simply re-exports the workspace crates under friendlier names so that
//! downstream users and the runnable examples only need a single dependency:
//!
//! * [`util`] — identifiers, geometry, descriptors, deterministic RNG, statistics.
//! * [`sim`] — the cycle-driven / event-driven simulation engine (PeerSim
//!   equivalent) with failure and churn models.
//! * [`sampling`] — the NEWSCAST peer sampling service and an idealised oracle.
//! * [`tman`] — generic T-Man topology construction (used as a baseline).
//! * [`core`] — the bootstrapping service itself: leaf sets, prefix tables,
//!   the gossip protocol of Fig. 2 and the convergence oracle.
//! * [`overlay`] — consumers of the bootstrapped tables: Pastry-style prefix
//!   routing, Kademlia XOR routing and a Chord baseline.
//! * [`traffic`] — sustained key-lookup workloads served against the live
//!   overlay mid-run, with per-cycle success/hop/latency series.
//! * [`net`] — a threaded UDP deployment of the protocol on real sockets.
//!
//! # Quickstart
//!
//! ```rust
//! use bootstrapping_service::core::experiment::{Experiment, ExperimentConfig};
//!
//! // Bootstrap a 256-node network from scratch and report convergence.
//! let config = ExperimentConfig::builder()
//!     .network_size(256)
//!     .seed(42)
//!     .build()
//!     .expect("valid configuration");
//! let outcome = Experiment::new(config).run();
//! assert!(outcome.converged());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bss_core as core;
pub use bss_net as net;
pub use bss_overlay as overlay;
pub use bss_sampling as sampling;
pub use bss_sim as sim;
pub use bss_tman as tman;
pub use bss_traffic as traffic;
pub use bss_util as util;
