//! Byzantine fault injection: the regression suite for the
//! `ByzantineConvert` scenario event, the eclipse/poisoning metrics and the
//! two config-gated countermeasures (descriptor verification and the view
//! diversity quota).
//!
//! The headline these tests pin: at N = 1024 with NEWSCAST sampling, a 20 %
//! id-spray conversion fully eclipses its undefended target on both engines,
//! while switching both countermeasures on keeps the eclipse fraction below
//! 0.5 for the whole run and the network still converges.

use bootstrapping_service::core::experiment::{
    Experiment, ExperimentConfig, RunReport, SamplerChoice,
};
use bootstrapping_service::core::scenario::{
    AdversaryBehavior, Engine, LatencyModel, Phase, ScenarioEvent,
};
use bootstrapping_service::util::config::{BootstrapParams, NewscastParams};

const ATTACK_START: u64 = 5;
const ATTACK_END: u64 = 45;
const VERIFIER_KEY: u64 = 0x0ff1_cec0_ffee;

/// The headline configuration: 20 % of a 1024-node network converts to
/// id-spraying node 0 during cycles [5, 45). `defended` switches on *both*
/// countermeasures — the descriptor verifier on the bootstrap layer and the
/// per-origin view diversity quota on the NEWSCAST layer.
fn spray_config(engine: Engine, defended: bool) -> ExperimentConfig {
    let newscast = NewscastParams {
        view_size: 20,
        period_millis: 1000,
        view_diversity_quota: defended.then_some(2),
        ..NewscastParams::paper_default()
    };
    let params = BootstrapParams {
        descriptor_verifier: defended.then_some(VERIFIER_KEY),
        ..BootstrapParams::paper_default()
    };
    let mut builder = ExperimentConfig::builder();
    builder
        .network_size(1024)
        .seed(7)
        .max_cycles(120)
        .engine(engine)
        .params(params)
        .sampler(SamplerChoice::Newscast(newscast))
        .event(ScenarioEvent::ByzantineConvert {
            phase: Phase::new(ATTACK_START, ATTACK_END),
            fraction: 0.2,
            behavior: AdversaryBehavior::IdSpray { target: 0 },
        });
    builder.build().expect("valid adversarial configuration")
}

fn eclipse_peak(report: &RunReport) -> f64 {
    report
        .eclipse_series()
        .points()
        .iter()
        .map(|&(_, value)| value)
        .fold(0.0f64, f64::max)
}

fn poisoned_peak(report: &RunReport) -> f64 {
    report
        .poisoned_series()
        .points()
        .iter()
        .map(|&(_, value)| value)
        .fold(0.0f64, f64::max)
}

const BOTH_ENGINES: [Engine; 2] = [
    Engine::Cycle,
    Engine::Event {
        latency: LatencyModel::Constant { millis: 1 },
    },
];

/// The acceptance pin: undefended, the sprayers take every leaf-set slot of
/// their victim (`eclipsed`, with a finite time-to-eclipse inside the attack
/// window); with the verifier and the quota on, the eclipse fraction never
/// reaches 0.5 and the network still converges — on both engines.
#[test]
fn id_spray_eclipses_undefended_target_and_countermeasures_hold_at_n1024() {
    for engine in BOTH_ENGINES {
        let label = engine.label();

        let undefended = Experiment::new(spray_config(engine, false)).run();
        assert!(
            undefended.eclipsed(),
            "[{label}] 20% id-spray must fully eclipse the undefended target \
             (peak eclipse fraction {:.3})",
            eclipse_peak(&undefended)
        );
        let time_to_eclipse = undefended.time_to_eclipse().expect("eclipsed");
        assert!(
            (ATTACK_START..ATTACK_END).contains(&time_to_eclipse),
            "[{label}] time-to-eclipse {time_to_eclipse} outside the attack window"
        );
        // The attack leaves the conversion visible in the fired-event log and
        // the poisoning metric live.
        assert_eq!(undefended.events_fired().len(), 1, "[{label}]");
        assert_eq!(undefended.events_fired()[0].0, ATTACK_START, "[{label}]");
        assert!(poisoned_peak(&undefended) > 0.0, "[{label}]");

        let defended = Experiment::new(spray_config(engine, true)).run();
        let peak = eclipse_peak(&defended);
        assert!(
            peak < 0.5,
            "[{label}] countermeasures must keep the eclipse fraction below \
             0.5 for the whole run (peak {peak:.3})"
        );
        assert!(!defended.eclipsed(), "[{label}]");
        assert_eq!(defended.time_to_eclipse(), None, "[{label}]");
        assert!(
            defended.converged(),
            "[{label}] the defended network must still converge: {defended}"
        );

        // The report JSON carries the verdict CI gates on.
        assert!(undefended.to_json().contains("\"eclipsed\": true"));
        let defended_json = defended.to_json();
        assert!(defended_json.contains("\"eclipsed\": false"));
        assert!(defended_json.contains("\"time_to_eclipse\": null"));
    }
}

/// Cycle-vs-event consistency for descriptor forgery: the poisoning surge and
/// its repair must not be artifacts of the synchronous cycle abstraction. The
/// same 10 % forge scenario runs on both engines at N = 512; both must show
/// the poisoned-descriptor fraction rising above the adversaries' natural 10 %
/// address share during the attack, and both must converge after it ends.
///
/// Descriptor aging is on: forged identifiers are indistinguishable from
/// departed nodes (no honest peer ever re-stamps them), so the failure
/// detector's expiry is the mechanism that actually evicts them once the
/// forgers stop refreshing their fabrications. Without it the forged entries
/// squat in the tables forever and the overlay never recovers.
#[test]
fn both_engines_agree_on_forge_poisoning_at_n512() {
    let forge_end = 30u64;
    let mut peaks = Vec::new();
    for engine in BOTH_ENGINES {
        let label = engine.label();
        let config = {
            let mut builder = ExperimentConfig::builder();
            builder
                .network_size(512)
                .seed(42)
                .max_cycles(100)
                .descriptor_max_age(Some(8))
                .engine(engine)
                .event(ScenarioEvent::ByzantineConvert {
                    phase: Phase::new(ATTACK_START, forge_end),
                    fraction: 0.1,
                    behavior: AdversaryBehavior::ForgeDescriptors,
                });
            builder.build().unwrap()
        };
        let report = Experiment::new(config).run();
        // Before the conversion fires the poisoned fraction is structurally
        // zero; during the attack the forged copies push it above the 10 %
        // share the adversaries' addresses hold naturally.
        assert_eq!(report.poisoned_series().value_at(0), Some(0.0), "[{label}]");
        let peak = poisoned_peak(&report);
        assert!(
            peak > 0.1,
            "[{label}] forging must over-represent adversary addresses \
             (peak poisoned fraction {peak:.3})"
        );
        // Forgery names no eclipse target, so the eclipse metric stays zero.
        assert_eq!(report.time_to_eclipse(), None, "[{label}]");
        assert!(
            report
                .eclipse_series()
                .points()
                .iter()
                .all(|&(_, value)| value == 0.0),
            "[{label}] a targetless attack must not register an eclipse"
        );
        // Once the attack window closes, honest gossip repairs the tables.
        assert!(
            report.converged(),
            "[{label}] the overlay must recover from the forge window: {report}"
        );
        assert!(
            report.convergence_cycle().unwrap() >= forge_end - 1,
            "[{label}] the recorded convergence must postdate the attack"
        );
        peaks.push(peak);
    }
    // Same scenario, same qualitative story: the two engines' poisoning peaks
    // agree to well within the attack's own magnitude.
    assert!(
        (peaks[0] - peaks[1]).abs() < 0.1,
        "engines disagree on the poisoning surge: cycle {:.3} vs event {:.3}",
        peaks[0],
        peaks[1]
    );
}

/// The hub attack end to end: sybil flooding from 5 % of a 256-node network
/// concentrates the sampling overlay's in-degree on the attackers (visible in
/// the per-cycle Gini and max in-degree series); the view diversity quota caps
/// the concentration without touching honest traffic.
#[test]
fn hub_attack_spikes_in_degree_and_quota_flattens_it() {
    let run = |quota: Option<usize>| {
        let config = ExperimentConfig::builder()
            .network_size(256)
            .seed(9)
            .max_cycles(60)
            .stop_when_perfect(false)
            .sampler(SamplerChoice::Newscast(NewscastParams {
                view_size: 20,
                period_millis: 1000,
                view_diversity_quota: quota,
                ..NewscastParams::paper_default()
            }))
            .event(ScenarioEvent::ByzantineConvert {
                phase: Phase::new(ATTACK_START, 60),
                fraction: 0.05,
                behavior: AdversaryBehavior::HubAttack,
            })
            .build()
            .unwrap();
        Experiment::new(config).run()
    };
    let series_peak = |series: &bootstrapping_service::util::stats::Series| {
        series
            .points()
            .iter()
            .map(|&(_, value)| value)
            .fold(0.0f64, f64::max)
    };
    let undefended = run(None);
    let defended = run(Some(2));
    // The quality series are live on both runs (NEWSCAST maintains an overlay
    // to measure) and cover every measured cycle.
    assert_eq!(
        undefended.in_degree_gini_series().len(),
        undefended.cycles_executed() as usize
    );
    let gini_undefended = series_peak(undefended.in_degree_gini_series());
    let gini_defended = series_peak(defended.in_degree_gini_series());
    let max_undefended = series_peak(undefended.in_degree_max_series());
    let max_defended = series_peak(defended.in_degree_max_series());
    assert!(
        gini_undefended > gini_defended,
        "quota must flatten the in-degree distribution \
         (gini {gini_undefended:.3} vs {gini_defended:.3})"
    );
    assert!(
        max_undefended > max_defended,
        "quota must cap the hubs' in-degree \
         (max {max_undefended:.1} vs {max_defended:.1})"
    );
    // The undefended hubs really dominate: the heaviest node holds several
    // times the mean in-degree (≈ the view size).
    assert!(
        max_undefended > 3.0 * 20.0,
        "hub attack should concentrate in-degree (max {max_undefended:.1})"
    );
    let json = undefended.to_json();
    assert!(json.contains("\"in_degree_gini_series\""));
    assert!(json.contains("\"dead_pointer_series\""));
}
