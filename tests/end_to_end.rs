//! Integration tests spanning the whole workspace: bootstrap end to end (with and
//! without failures and churn), hand the result to routing substrates, and check
//! the paper's qualitative claims on small networks.

use bootstrapping_service::core::experiment::{Experiment, ExperimentConfig, SamplerChoice};
use bootstrapping_service::overlay::lookup::{LookupEvaluator, RouterKind};
use bootstrapping_service::util::config::{BootstrapParams, NewscastParams};

#[test]
fn full_stack_bootstrap_over_newscast_then_route() {
    // The complete architecture of Figure 1: NEWSCAST sampling at the bottom, the
    // bootstrapping service above it, a routing substrate consuming the result.
    let config = ExperimentConfig::builder()
        .network_size(256)
        .seed(1)
        .sampler(SamplerChoice::Newscast(NewscastParams::paper_default()))
        .max_cycles(80)
        .build()
        .unwrap();
    let (outcome, snapshot) = Experiment::new(config).run_with_snapshot();
    assert!(outcome.converged(), "{outcome}");

    let mut evaluator = LookupEvaluator::new(snapshot, 11);
    for router in [RouterKind::Pastry, RouterKind::Kademlia, RouterKind::Chord] {
        let report = evaluator.evaluate(router, 200);
        assert_eq!(report.success_rate(), 1.0, "{report}");
        assert!(report.mean_hops() < 8.0, "{report}");
    }
}

#[test]
fn convergence_time_grows_additively_with_network_size() {
    // The paper's scalability observation (Figure 3): a 4x larger network needs
    // only an additive constant more cycles.
    let mut cycles = Vec::new();
    for exponent in [8u32, 10, 12] {
        let config = ExperimentConfig::builder()
            .network_size(1 << exponent)
            .seed(3)
            .max_cycles(80)
            .build()
            .unwrap();
        let outcome = Experiment::new(config).run();
        assert!(
            outcome.converged(),
            "N=2^{exponent} did not converge: {outcome}"
        );
        cycles.push(outcome.convergence_cycle().unwrap());
    }
    assert!(cycles[1] >= cycles[0]);
    assert!(cycles[2] >= cycles[1]);
    let first_step = cycles[1].saturating_sub(cycles[0]);
    let second_step = cycles[2].saturating_sub(cycles[1]);
    assert!(
        first_step <= 12 && second_step <= 12,
        "growth per 4x size should be a small additive constant: {cycles:?}"
    );
}

#[test]
fn twenty_percent_message_loss_only_slows_convergence_down() {
    // Figure 4 vs Figure 3 on a small network, averaged over seeds.
    let mut reliable = 0u64;
    let mut lossy = 0u64;
    for seed in 0..3u64 {
        let base = ExperimentConfig::builder()
            .network_size(512)
            .seed(seed)
            .max_cycles(200)
            .build()
            .unwrap();
        let outcome = Experiment::new(base).run();
        assert!(outcome.converged());
        reliable += outcome.convergence_cycle().unwrap();

        let dropped = ExperimentConfig::builder()
            .network_size(512)
            .seed(seed)
            .drop_probability(0.2)
            .max_cycles(200)
            .build()
            .unwrap();
        let outcome = Experiment::new(dropped).run();
        assert!(outcome.converged(), "loss must not prevent convergence");
        lossy += outcome.convergence_cycle().unwrap();
    }
    assert!(
        lossy >= reliable,
        "loss should cost cycles ({reliable} vs {lossy})"
    );
    assert!(
        lossy <= reliable * 4,
        "the paper reports a proportional slow-down, not a collapse ({reliable} vs {lossy})"
    );
}

#[test]
fn combined_churn_and_loss_at_2048_nodes_keeps_tables_usable() {
    // The harshest sustained scenario the paper's deployment would face: a
    // 2048-node network bootstrapping under 20 % message loss *and* 0.5 %/cycle
    // replacement churn at the same time. Perfection is unreachable (the
    // protocol has no failure detector), but table quality must settle near the
    // rT / (1 + rT) staleness bound rather than collapse, and the run must stay
    // deterministic.
    let config = ExperimentConfig::builder()
        .network_size(1 << 11)
        .seed(9)
        .drop_probability(0.2)
        .churn_rate(0.005)
        .max_cycles(40)
        .stop_when_perfect(false)
        .build()
        .unwrap();
    let outcome = Experiment::new(config.clone()).run();
    assert_eq!(outcome.cycles_executed(), 40);
    assert!(!outcome.converged(), "churn never reaches perfection");
    // With r = 0.5 %/cycle and T = 40, the staleness bound is ~0.17; allow
    // headroom for the loss-slowed start-up.
    let final_leaf = outcome.leaf_series().final_value().unwrap();
    let final_prefix = outcome.prefix_series().final_value().unwrap();
    assert!(
        final_leaf < 0.30,
        "leaf quality collapsed under churn+loss: {final_leaf}"
    );
    assert!(
        final_prefix < 0.30,
        "prefix quality collapsed under churn+loss: {final_prefix}"
    );
    // The mid-run epidemic must still have made fast progress despite both
    // adversities: by cycle 15 the bulk of the entries are in place.
    let mid = outcome.leaf_series().value_at(15).unwrap();
    assert!(mid < 0.15, "epidemic too slow under churn+loss: {mid}");
    // Determinism survives the full churn+loss machinery.
    let replay = Experiment::new(config).run();
    assert_eq!(
        outcome.leaf_series().points(),
        replay.leaf_series().points()
    );
    assert_eq!(
        outcome.prefix_series().points(),
        replay.prefix_series().points()
    );
}

#[test]
fn missing_entry_proportion_decays_roughly_exponentially() {
    // "Convergence of the leaf sets clearly follows an exponential behavior" (§5):
    // the proportion should fall by a large factor within a few cycles of the
    // mid-phase rather than linearly.
    let config = ExperimentConfig::builder()
        .network_size(1 << 11)
        .seed(5)
        .max_cycles(60)
        .build()
        .unwrap();
    let outcome = Experiment::new(config).run();
    assert!(outcome.converged());
    let series = outcome.leaf_series();
    let early = series.value_at(2).unwrap();
    let later = series.value_at(6).unwrap();
    assert!(
        later < early / 5.0,
        "leaf convergence too slow to be exponential: {early} -> {later}"
    );
}

#[test]
fn non_default_geometries_also_converge() {
    // b = 2 (base-4 digits) and k = 1: a different table shape must bootstrap too.
    let params = BootstrapParams {
        bits_per_digit: 2,
        entries_per_slot: 1,
        leaf_set_size: 12,
        random_samples: 20,
        ..BootstrapParams::paper_default()
    };
    let config = ExperimentConfig::builder()
        .network_size(256)
        .seed(7)
        .params(params)
        .max_cycles(80)
        .build()
        .unwrap();
    let outcome = Experiment::new(config).run();
    assert!(outcome.converged(), "{outcome}");
}

#[test]
fn churn_during_bootstrap_keeps_quality_high_but_imperfect() {
    let config = ExperimentConfig::builder()
        .network_size(512)
        .seed(9)
        .churn_rate(0.005)
        .max_cycles(30)
        .stop_when_perfect(false)
        .build()
        .unwrap();
    let outcome = Experiment::new(config).run();
    let leaf = outcome.leaf_series().final_value().unwrap();
    let prefix = outcome.prefix_series().final_value().unwrap();
    assert!(
        leaf < 0.2,
        "leaf quality under light churn too poor: {leaf}"
    );
    assert!(
        prefix < 0.2,
        "prefix quality under light churn too poor: {prefix}"
    );
}

#[test]
fn deterministic_replay_across_the_whole_stack() {
    let config = ExperimentConfig::builder()
        .network_size(300)
        .seed(123)
        .drop_probability(0.1)
        .max_cycles(100)
        .build()
        .unwrap();
    let first = Experiment::new(config.clone()).run();
    let second = Experiment::new(config).run();
    assert_eq!(first.convergence_cycle(), second.convergence_cycle());
    assert_eq!(first.leaf_series().points(), second.leaf_series().points());
    assert_eq!(
        first.prefix_series().points(),
        second.prefix_series().points()
    );
    assert_eq!(
        first.traffic().requests_delivered,
        second.traffic().requests_delivered
    );
}
