//! Property-based tests of the core data-structure invariants, driven by proptest.
//!
//! These cover the algebra underneath the protocol: identifier digit arithmetic,
//! ring metrics, leaf-set balancing, prefix-table slot discipline, the
//! `CREATEMESSAGE` bounds and the wire codec.

use bootstrapping_service::core::leafset::LeafSet;
use bootstrapping_service::core::message::{create_message, message_size_bound};
use bootstrapping_service::core::prefix_table::PrefixTable;
use bootstrapping_service::util::descriptor::Descriptor;
use bootstrapping_service::util::geometry::TableGeometry;
use bootstrapping_service::util::id::NodeId;
use proptest::collection::vec;
use proptest::prelude::*;

fn descriptor_strategy() -> impl Strategy<Value = Descriptor<u32>> {
    (any::<u64>(), any::<u32>(), any::<u64>())
        .prop_map(|(id, addr, ts)| Descriptor::new(NodeId::new(id), addr, ts))
}

proptest! {
    #[test]
    fn digit_round_trip_for_all_supported_widths(raw in any::<u64>(), width in prop::sample::select(vec![1u8, 2, 4, 8])) {
        let id = NodeId::new(raw);
        let digits = id.digits(width);
        prop_assert_eq!(digits.len(), NodeId::digit_count(width));
        prop_assert_eq!(NodeId::from_digits(&digits, width), id);
        for digit in digits {
            prop_assert!(u32::from(digit) < (1u32 << width));
        }
    }

    #[test]
    fn ring_distance_is_a_metric_up_to_the_ring_structure(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (a, b, c) = (NodeId::new(a), NodeId::new(b), NodeId::new(c));
        // Symmetry and identity.
        prop_assert_eq!(a.ring_distance(b), b.ring_distance(a));
        prop_assert_eq!(a.ring_distance(a), 0);
        prop_assert!(a.ring_distance(b) <= u64::MAX / 2 + 1);
        // Triangle inequality (saturating to avoid overflow in the sum).
        let direct = a.ring_distance(c) as u128;
        let via = a.ring_distance(b) as u128 + b.ring_distance(c) as u128;
        prop_assert!(direct <= via);
    }

    #[test]
    fn successor_classification_is_antisymmetric(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let (a, b) = (NodeId::new(a), NodeId::new(b));
        let forward = a.clockwise_distance(b);
        let backward = b.clockwise_distance(a);
        // Exactly one direction is the shorter one unless they are antipodal.
        if forward != backward {
            prop_assert_ne!(a.is_successor(b), b.is_successor(a));
        }
    }

    #[test]
    fn common_prefix_is_symmetric_and_consistent_with_slots(a in any::<u64>(), b in any::<u64>()) {
        let (a, b) = (NodeId::new(a), NodeId::new(b));
        let geometry = TableGeometry::paper_default();
        prop_assert_eq!(a.common_prefix_len(b, 4), b.common_prefix_len(a, 4));
        if a != b {
            let (row, column) = geometry.slot_of(a, b).unwrap();
            prop_assert_eq!(row, a.common_prefix_len(b, 4));
            prop_assert_eq!(column, b.digit(row, 4));
            prop_assert_ne!(column, a.digit(row, 4));
        } else {
            prop_assert!(geometry.slot_of(a, b).is_none());
        }
    }

    #[test]
    fn leaf_set_invariants_hold_for_arbitrary_updates(
        own in any::<u64>(),
        capacity in prop::sample::select(vec![2usize, 4, 8, 20]),
        incoming in vec(descriptor_strategy(), 0..120),
        second_wave in vec(descriptor_strategy(), 0..60),
    ) {
        let own = NodeId::new(own);
        let mut leaf_set = LeafSet::new(own, capacity);
        leaf_set.update(incoming.iter().copied());
        let before: std::collections::HashSet<NodeId> = leaf_set.iter().map(|d| d.id()).collect();
        leaf_set.update(second_wave.iter().copied());

        // Size and self-exclusion.
        prop_assert!(leaf_set.len() <= capacity);
        prop_assert!(leaf_set.iter().all(|d| d.id() != own));
        // No duplicates.
        let unique: std::collections::HashSet<NodeId> = leaf_set.iter().map(|d| d.id()).collect();
        prop_assert_eq!(unique.len(), leaf_set.len());
        // Successors and predecessors are correctly classified and sorted.
        for window in leaf_set.successors().windows(2) {
            prop_assert!(own.clockwise_distance(window[0].id()) <= own.clockwise_distance(window[1].id()));
        }
        for window in leaf_set.predecessors().windows(2) {
            prop_assert!(window[0].id().clockwise_distance(own) <= window[1].id().clockwise_distance(own));
        }
        for descriptor in leaf_set.successors() {
            prop_assert!(own.is_successor(descriptor.id()));
        }
        for descriptor in leaf_set.predecessors() {
            prop_assert!(!own.is_successor(descriptor.id()));
        }
        // Monotone improvement: an entry can only disappear if the set is at capacity.
        if leaf_set.len() < capacity {
            for id in &before {
                prop_assert!(leaf_set.contains(*id), "entry lost while below capacity");
            }
        }
    }

    #[test]
    fn prefix_table_invariants_hold_for_arbitrary_updates(
        own in any::<u64>(),
        entries_per_slot in 1usize..4,
        incoming in vec(descriptor_strategy(), 0..200),
    ) {
        let own = NodeId::new(own);
        let geometry = TableGeometry::new(4, entries_per_slot).unwrap();
        let mut table = PrefixTable::new(own, geometry);
        let inserted = table.update(incoming.iter().copied());
        prop_assert!(inserted <= incoming.len());
        prop_assert_eq!(table.len(), table.iter().count());
        prop_assert!(!table.contains(own));

        for row in 0..geometry.rows() {
            for column in 0..geometry.columns() as u8 {
                let slot = table.slot(row, column);
                prop_assert!(slot.len() <= entries_per_slot);
                for descriptor in slot {
                    // Every stored entry sits in exactly the slot its identifier defines.
                    prop_assert_eq!(geometry.slot_of(own, descriptor.id()), Some((row, column)));
                }
                let ids: std::collections::HashSet<NodeId> = slot.iter().map(|d| d.id()).collect();
                prop_assert_eq!(ids.len(), slot.len());
            }
        }
    }

    #[test]
    fn create_message_is_bounded_and_sourced_from_local_knowledge(
        own in any::<u64>(),
        peer in any::<u64>(),
        leaf_candidates in vec(descriptor_strategy(), 0..60),
        table_candidates in vec(descriptor_strategy(), 0..120),
        samples in vec(descriptor_strategy(), 0..40),
    ) {
        prop_assume!(own != peer);
        let own_id = NodeId::new(own);
        let peer_id = NodeId::new(peer);
        let own_descriptor = Descriptor::new(own_id, 0u32, 0);
        let geometry = TableGeometry::paper_default();
        let mut leaf_set = LeafSet::new(own_id, 20);
        leaf_set.update(leaf_candidates.iter().copied());
        let mut table = PrefixTable::new(own_id, geometry);
        table.update(table_candidates.iter().copied());

        let message = create_message(own_descriptor, &leaf_set, &table, &samples, peer_id, 20);

        // Bounded by the paper's bound.
        prop_assert!(message.len() <= message_size_bound(20, geometry.capacity()));
        // Never contains the peer, never contains duplicates.
        prop_assert!(message.iter().all(|d| d.id() != peer_id));
        let unique: std::collections::HashSet<NodeId> = message.iter().map(|d| d.id()).collect();
        prop_assert_eq!(unique.len(), message.len());
        // Every entry comes from local knowledge (leaf set, table, samples or self).
        let known: std::collections::HashSet<NodeId> = leaf_set
            .iter()
            .map(|d| d.id())
            .chain(table.iter().map(|d| d.id()))
            .chain(samples.iter().map(|d| d.id()))
            .chain(std::iter::once(own_id))
            .collect();
        for descriptor in &message {
            prop_assert!(known.contains(&descriptor.id()));
        }
    }

    #[test]
    fn udp_codec_round_trips_arbitrary_messages(
        kind_is_request in any::<bool>(),
        sender_id in any::<u64>(),
        sender_port in any::<u16>(),
        entries in vec((any::<u64>(), any::<u16>(), any::<u64>()), 0..80),
    ) {
        use bootstrapping_service::net::codec::{decode, encode, MessageKind, WireMessage};
        use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};

        let addr = |port: u16| SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::LOCALHOST, port));
        let message = WireMessage::unstamped(
            if kind_is_request { MessageKind::Request } else { MessageKind::Response },
            Descriptor::new(NodeId::new(sender_id), addr(sender_port), 1),
            entries
                .into_iter()
                .map(|(id, port, ts)| Descriptor::new(NodeId::new(id), addr(port), ts))
                .collect(),
        );
        let decoded = decode(&encode(&message)).expect("round trip");
        prop_assert_eq!(decoded, message);
    }
}
