//! Sim-vs-net parity: the wire runs the same clocked protocol core as the
//! simulator engines, so a UDP cluster must bootstrap to the *same* converged
//! oracle state the cycle engine reaches with matching parameters.
//!
//! Both `Experiment` (via `Network::with_random_ids`) and the net stack draw
//! node identifiers as `SimRng::seed_from(seed)` followed by one
//! `distinct_u64(size)` batch, so a sim run and a net cluster with the same
//! seed and size host the *same identifier population* — which is what makes
//! per-identifier table comparison meaningful.
//!
//! Environments without loopback UDP (heavily sandboxed CI) skip on bind
//! failure, like every other socket test in the workspace.

use bootstrapping_service::core::experiment::{Experiment, ExperimentConfig};
use bootstrapping_service::net::cluster::{Cluster, ClusterConfig, ClusterMode};
use bss_util::config::BootstrapParams;
use bss_util::id::NodeId;
use std::collections::BTreeSet;
use std::time::Duration;

const SEED: u64 = 7;

fn parity_params() -> BootstrapParams {
    BootstrapParams {
        leaf_set_size: 6,
        random_samples: 8,
        cycle_millis: 40,
        ..BootstrapParams::paper_default()
    }
}

fn spawn_or_skip(config: ClusterConfig) -> Option<Cluster> {
    match Cluster::spawn(config) {
        Ok(cluster) => Some(cluster),
        Err(error) => {
            eprintln!("skipping net parity test: {error}");
            None
        }
    }
}

#[test]
fn a_driver_cluster_reaches_the_cycle_engines_converged_state() {
    const SIZE: usize = 64;
    let params = parity_params();

    // The reference: the cycle engine, same seed, size and table parameters.
    let config = ExperimentConfig::builder()
        .network_size(SIZE)
        .seed(SEED)
        .params(params)
        .max_cycles(200)
        .stop_when_perfect(true)
        .build()
        .expect("valid sim config");
    let (report, snapshot) = Experiment::new(config).run_with_snapshot();
    assert!(
        report.converged(),
        "the cycle engine must converge: {report}"
    );

    // The subject: a 64-peer loopback cluster through the single-loop driver.
    let Some(cluster) = spawn_or_skip(ClusterConfig {
        size: SIZE,
        params,
        contacts_per_peer: 4,
        seed: SEED,
        mode: ClusterMode::Driver,
    }) else {
        return;
    };
    assert!(
        cluster.wait_for_convergence(Duration::from_secs(90)),
        "the wire cluster must reach the oracle-perfect state: {:?}",
        cluster.measure()
    );

    // Same identifier population, drawn in the same order.
    let sim_ids: BTreeSet<NodeId> = snapshot.ids().collect();
    let net_ids: BTreeSet<NodeId> = cluster.peers().iter().map(|peer| peer.id()).collect();
    assert_eq!(sim_ids, net_ids, "seeded identifier assignment must match");

    // Both being oracle-perfect, every node's leaf set is the c/2 ring
    // neighbours on each side — so the wire tables must equal the sim tables
    // identifier for identifier.
    for peer in cluster.peers() {
        let sim_node = snapshot
            .node_by_id(peer.id())
            .expect("sim population holds every wire identifier");
        let sim_leaf: BTreeSet<NodeId> = sim_node.leaf_set().iter().map(|d| d.id()).collect();
        let net_leaf: BTreeSet<NodeId> = peer
            .state_snapshot()
            .leaf_set()
            .iter()
            .map(|d| d.id())
            .collect();
        assert_eq!(
            sim_leaf,
            net_leaf,
            "leaf set of {} diverges between sim and wire",
            peer.id()
        );
    }
    cluster.shutdown();
}

#[test]
fn aging_purges_killed_peers_from_the_wire() {
    const SIZE: usize = 32;
    let params = BootstrapParams {
        descriptor_max_age: Some(6),
        ..parity_params()
    };

    let Some(cluster) = spawn_or_skip(ClusterConfig {
        size: SIZE,
        params,
        contacts_per_peer: 4,
        seed: SEED,
        mode: ClusterMode::Driver,
    }) else {
        return;
    };
    assert!(
        cluster.wait_for_convergence(Duration::from_secs(90)),
        "the aged cluster must first converge: {:?}",
        cluster.measure()
    );

    // Kill a quarter mid-run. The dead peers' descriptors are still all over
    // the survivors' tables...
    let killed = cluster.kill(0.25, 99);
    assert_eq!(killed.len(), SIZE / 4);
    assert!(
        cluster.dead_descriptor_fraction() > 0.0,
        "converged tables must still reference the freshly killed peers"
    );

    // ... until aging evicts them: dead peers stop heartbeating, their
    // descriptors expire, and the survivors re-converge to the smaller
    // oracle-perfect state — the wire twin of `tests/recovery.rs`.
    assert!(
        cluster.wait_for_recovery(Duration::from_secs(90)),
        "survivors must purge dead descriptors and re-converge: \
         dead fraction {:.4}, state {:?}",
        cluster.dead_descriptor_fraction(),
        cluster.measure()
    );
    assert_eq!(cluster.dead_descriptor_fraction(), 0.0);
    cluster.shutdown();
}
