//! Property-based consistency checks between the convergence oracle (global
//! knowledge) and the protocol's node-local data structures: feeding a node every
//! live descriptor must always produce tables the oracle judges perfect, and the
//! oracle's fillable-slot counts must match a brute-force enumeration.

use bootstrapping_service::core::convergence::ConvergenceOracle;
use bootstrapping_service::core::node::BootstrapNode;
use bootstrapping_service::util::config::BootstrapParams;
use bootstrapping_service::util::descriptor::Descriptor;
use bootstrapping_service::util::geometry::TableGeometry;
use bootstrapping_service::util::id::NodeId;
use proptest::collection::hash_set;
use proptest::prelude::*;

fn params(c: usize, k: usize) -> BootstrapParams {
    BootstrapParams {
        leaf_set_size: c,
        entries_per_slot: k,
        ..BootstrapParams::paper_default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn omniscient_nodes_are_judged_perfect(
        raw_ids in hash_set(any::<u64>(), 2..80),
        c in prop::sample::select(vec![4usize, 8, 20]),
        k in 1usize..4,
    ) {
        let ids: Vec<NodeId> = raw_ids.iter().copied().map(NodeId::new).collect();
        let p = params(c, k);
        let oracle = ConvergenceOracle::new(ids.clone(), &p);
        let all: Vec<Descriptor<u32>> = ids
            .iter()
            .enumerate()
            .map(|(position, &id)| Descriptor::new(id, position as u32, 0))
            .collect();
        for &me in ids.iter().take(10) {
            let mut node = BootstrapNode::new(Descriptor::new(me, 0u32, 0), &p).unwrap();
            node.receive(&all);
            let measured = oracle.measure_node(&node);
            prop_assert_eq!(measured.leaf_missing, 0, "leaf set not perfect for {}", me);
            prop_assert_eq!(measured.prefix_missing, 0, "prefix table not perfect for {}", me);
            prop_assert_eq!(measured.prefix_total, oracle.fillable_prefix_entries(me));
        }
    }

    #[test]
    fn fillable_slot_counts_match_brute_force(
        raw_ids in hash_set(any::<u64>(), 2..60),
        k in 1usize..4,
    ) {
        let ids: Vec<NodeId> = raw_ids.iter().copied().map(NodeId::new).collect();
        let p = params(8, k);
        let geometry = TableGeometry::new(p.bits_per_digit, k).unwrap();
        let oracle = ConvergenceOracle::new(ids.clone(), &p);
        for &me in ids.iter().take(10) {
            let mut per_slot: std::collections::HashMap<(usize, u8), usize> =
                std::collections::HashMap::new();
            for &other in &ids {
                if let Some(slot) = geometry.slot_of(me, other) {
                    *per_slot.entry(slot).or_default() += 1;
                }
            }
            let expected: usize = per_slot.values().map(|&count| count.min(k)).sum();
            prop_assert_eq!(oracle.fillable_prefix_entries(me), expected);
        }
    }

    #[test]
    fn ignorant_nodes_are_judged_maximally_missing(
        raw_ids in hash_set(any::<u64>(), 3..60),
    ) {
        let ids: Vec<NodeId> = raw_ids.iter().copied().map(NodeId::new).collect();
        let p = params(8, 3);
        let oracle = ConvergenceOracle::new(ids.clone(), &p);
        let me = ids[0];
        let node = BootstrapNode::new(Descriptor::new(me, 0u32, 0), &p).unwrap();
        let measured = oracle.measure_node(&node);
        prop_assert_eq!(measured.leaf_missing, measured.leaf_total);
        prop_assert_eq!(measured.prefix_missing, measured.prefix_total);
        prop_assert!(measured.leaf_total > 0);
        prop_assert_eq!(
            measured.leaf_total,
            oracle.perfect_leaf_set(me).len()
        );
    }
}
