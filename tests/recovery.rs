//! Recovery after catastrophic failure: the regression suite for descriptor
//! aging, the `ReBootstrap` scenario event and the recovery metrics.
//!
//! The bug these tests pin: the paper's protocol has no failure detector, so
//! after a `CatastrophicFailure` the survivors keep gossiping descriptors of
//! dead nodes forever — the overlay never recovers. Descriptor aging
//! (`descriptor_max_age`) turns the NEWSCAST-style freshness timestamps into a
//! failure detector, and a `ReBootstrap` order re-seeds survivor views, after
//! which the overlay re-converges on both the cycle and the event engine.

use bootstrapping_service::core::experiment::{Experiment, ExperimentConfig, RunReport};
use bootstrapping_service::core::scenario::{Engine, LatencyModel, ScenarioEvent};

const CATASTROPHE_CYCLE: u64 = 15;

/// A 50 % catastrophe at cycle 15, with the given aging bound and (optionally)
/// a full re-bootstrap order two cycles later.
fn catastrophe_config(
    network_size: usize,
    engine: Engine,
    max_age: Option<u64>,
    rebootstrap: bool,
    max_cycles: u64,
) -> ExperimentConfig {
    let mut builder = ExperimentConfig::builder();
    builder
        .network_size(network_size)
        .seed(7)
        .max_cycles(max_cycles)
        .stop_when_perfect(false)
        .engine(engine)
        .descriptor_max_age(max_age)
        .event(ScenarioEvent::CatastrophicFailure {
            at_cycle: CATASTROPHE_CYCLE,
            fraction: 0.5,
        });
    if rebootstrap {
        builder.event(ScenarioEvent::ReBootstrap {
            at_cycle: CATASTROPHE_CYCLE + 2,
            fraction: 1.0,
        });
    }
    builder.build().expect("valid recovery configuration")
}

fn dead_fraction_at(report: &RunReport, cycle: u64) -> f64 {
    report
        .dead_series()
        .value_at(cycle)
        .unwrap_or_else(|| panic!("no dead-descriptor sample at cycle {cycle}"))
}

/// The bug itself, pinned: with aging off, the dead-descriptor fraction jumps
/// at the catastrophe and never returns to zero — survivors gossip the dead
/// forever and the overlay never reaches perfect tables again.
#[test]
fn without_aging_the_overlay_never_recovers_on_either_engine() {
    for engine in [
        Engine::Cycle,
        Engine::Event {
            latency: LatencyModel::Constant { millis: 1 },
        },
    ] {
        let config = catastrophe_config(256, engine, None, false, 60);
        let report = Experiment::new(config).run();
        assert_eq!(report.cycles_executed(), 60);
        assert_eq!(
            report.degraded_cycle(),
            Some(CATASTROPHE_CYCLE),
            "[{}] staleness must appear exactly at the catastrophe",
            engine.label()
        );
        for cycle in CATASTROPHE_CYCLE..60 {
            assert!(
                dead_fraction_at(&report, cycle) > 0.0,
                "[{}] dead-descriptor fraction dropped to zero at cycle {cycle} \
                 without a failure detector",
                engine.label()
            );
        }
        assert_eq!(report.recovered_cycle(), None, "[{}]", engine.label());
        assert_eq!(report.cycles_to_recover(), None);
        assert!(
            !report.final_state().is_perfect(),
            "[{}] a detector-free overlay must not look perfect while it \
             holds dead descriptors",
            engine.label()
        );
    }
}

/// With `descriptor_max_age` set, the aging merge path purges every dead
/// descriptor within O(view-size) cycles of the catastrophe — no re-bootstrap
/// needed — on both engines.
#[test]
fn aging_alone_purges_dead_descriptors_within_view_size_cycles() {
    let max_age = 8u64;
    let view_size = 20u64; // the paper's c — the O(view-size) recovery bound
    for engine in [
        Engine::Cycle,
        Engine::Event {
            latency: LatencyModel::Constant { millis: 1 },
        },
    ] {
        let config = catastrophe_config(256, engine, Some(max_age), false, 60);
        let report = Experiment::new(config).run();
        assert_eq!(report.degraded_cycle(), Some(CATASTROPHE_CYCLE));
        let recovered = report.recovered_cycle().unwrap_or_else(|| {
            panic!(
                "[{}] aging never purged the dead descriptors: final fraction {:.3e}",
                engine.label(),
                report.dead_series().final_value().unwrap()
            )
        });
        let took = report.cycles_to_recover().expect("recovered");
        assert_eq!(took, recovered - CATASTROPHE_CYCLE);
        assert!(
            took <= view_size,
            "[{}] recovery took {took} cycles, beyond the O(view-size) bound \
             of {view_size}",
            engine.label()
        );
        assert_eq!(report.dead_series().final_value(), Some(0.0));
    }
}

/// A second catastrophe after a completed recovery: the recorded recovery
/// must refer to the state the run ended in, not to the first episode — a
/// re-degradation voids a previously recorded `recovered_cycle`.
#[test]
fn a_second_catastrophe_voids_and_then_renews_the_recorded_recovery() {
    let second_strike = CATASTROPHE_CYCLE + 20;
    let config = {
        let mut builder = ExperimentConfig::builder();
        builder
            .network_size(256)
            .seed(7)
            .max_cycles(70)
            .stop_when_perfect(false)
            .descriptor_max_age(Some(6))
            .event(ScenarioEvent::CatastrophicFailure {
                at_cycle: CATASTROPHE_CYCLE,
                fraction: 0.3,
            })
            .event(ScenarioEvent::CatastrophicFailure {
                at_cycle: second_strike,
                fraction: 0.3,
            });
        builder.build().unwrap()
    };
    let report = Experiment::new(config).run();
    assert_eq!(report.degraded_cycle(), Some(CATASTROPHE_CYCLE));
    // The overlay recovered from the first strike (fraction hit zero before
    // cycle 35), but that interim recovery must not be what the report says.
    assert!(
        report
            .dead_series()
            .points()
            .iter()
            .any(|&(cycle, value)| cycle < second_strike
                && value == 0.0
                && cycle > CATASTROPHE_CYCLE),
        "the interim recovery never happened; the timeline assumption broke"
    );
    let recovered = report
        .recovered_cycle()
        .expect("recovers from the second strike too");
    assert!(
        recovered > second_strike,
        "recovered_cycle {recovered} must postdate the second strike at {second_strike}"
    );
    assert_eq!(report.dead_series().final_value(), Some(0.0));
}

/// The acceptance pin: a 50 % catastrophe at N = 1024 with aging *and* a
/// full ReBootstrap order reaches zero dead descriptors and re-converges to
/// perfect tables on both the cycle and the event engine.
#[test]
fn catastrophe_with_aging_and_rebootstrap_reconverges_at_n1024() {
    for engine in [
        Engine::Cycle,
        Engine::Event {
            latency: LatencyModel::Constant { millis: 1 },
        },
    ] {
        let config = catastrophe_config(1024, engine, Some(10), true, 60);
        let report = Experiment::new(config).run();
        let label = engine.label();

        // Both scheduled events fired, in order.
        assert_eq!(report.events_fired().len(), 2, "[{label}]");
        assert_eq!(report.events_fired()[0].0, CATASTROPHE_CYCLE);
        assert_eq!(report.events_fired()[1].0, CATASTROPHE_CYCLE + 2);

        // The overlay degraded, then purged every dead descriptor...
        assert_eq!(
            report.degraded_cycle(),
            Some(CATASTROPHE_CYCLE),
            "[{label}]"
        );
        assert!(
            report.recovered_cycle().is_some(),
            "[{label}] dead descriptors were never fully purged: {:.3e}",
            report.dead_series().final_value().unwrap()
        );
        assert_eq!(report.dead_series().final_value(), Some(0.0), "[{label}]");

        // ... and re-converged to perfect tables over the survivor population.
        assert!(
            report.final_state().is_perfect(),
            "[{label}] survivors did not re-converge: {report}"
        );
        assert!(
            report.converged(),
            "[{label}] the re-convergence must be recorded: {report}"
        );
        assert!(
            report.convergence_cycle().unwrap() > CATASTROPHE_CYCLE,
            "[{label}] the recorded convergence must postdate the catastrophe \
             (pre-catastrophe perfection is reset by the degradation)"
        );
    }
}

/// The cycle-vs-event traffic pin for dead-node silencing: on the event
/// engine every alive node fires exactly one exchange timer per cycle Δ and
/// sends exactly one request, so after a catastrophe the per-cycle request
/// count must drop to the survivor count — dead nodes generate zero traffic
/// from the moment of the failure (their pending timers and answer slots are
/// cancelled).
#[test]
fn dead_nodes_generate_zero_event_engine_traffic_after_the_catastrophe() {
    let network_size = 64usize;
    let max_cycles = 30u64;
    let config = catastrophe_config(
        network_size,
        Engine::Event {
            latency: LatencyModel::Constant { millis: 1 },
        },
        None,
        false,
        max_cycles,
    );
    let report = Experiment::new(config).run();
    let survivors = network_size as u64 - (network_size as f64 * 0.5).round() as u64;
    // Victims fire for the pre-catastrophe cycles only; survivors for the
    // whole run. Any extra request would be a dead node still gossiping.
    let expected =
        network_size as u64 * CATASTROPHE_CYCLE + survivors * (max_cycles - CATASTROPHE_CYCLE);
    assert_eq!(
        report.traffic().requests_sent,
        expected,
        "dead nodes kept sending after the catastrophe"
    );
    assert!(report.traffic().answers_sent <= report.traffic().requests_delivered);
}
