//! Serving lookup traffic against the live overlay: the service-level
//! regression suite for the `bss-traffic` workload layer.
//!
//! The headline these tests pin, at N = 1024 on both engines: a calm converged
//! overlay sustains over 10^5 lookups without dropping one; a mid-run churn
//! burst visibly dents the per-cycle success series and descriptor aging
//! repairs the service back above 0.99; and a 20 % id-spray conversion guts
//! undefended lookups while the descriptor verifier plus the view diversity
//! quota keep every window at or above 0.99.

use bootstrapping_service::core::experiment::{
    Experiment, ExperimentConfig, ExperimentConfigBuilder, RunReport, SamplerChoice,
};
use bootstrapping_service::core::scenario::{
    AdversaryBehavior, Engine, KeyDist, LatencyModel, Phase, ScenarioEvent,
};
use bootstrapping_service::traffic::{TrafficSummary, TrafficWorkload};
use bootstrapping_service::util::config::{BootstrapParams, NewscastParams};

const SIZE: usize = 1024;
const SEED: u64 = 5;
const VERIFIER_KEY: u64 = 0xbeef;

/// Cycle plus a non-degenerate event-engine latency model, so the hop charges
/// feeding the latency percentiles differ per hop.
const BOTH_ENGINES: [Engine; 2] = [
    Engine::Cycle,
    Engine::Event {
        latency: LatencyModel::Uniform {
            min_millis: 20,
            max_millis: 180,
        },
    },
];

fn run(builder: &mut ExperimentConfigBuilder, engine: Engine) -> (RunReport, TrafficSummary) {
    let mut config = builder.build().expect("valid traffic configuration");
    config.engine = engine;
    let report = Experiment::new(config).run();
    let summary = TrafficSummary::from_report(&report).expect("traffic was scheduled");
    (report, summary)
}

fn window_values(report: &RunReport) -> Vec<(u64, f64)> {
    report
        .lookups()
        .expect("traffic was scheduled")
        .success_series()
        .points()
        .to_vec()
}

/// A calm 1024-node overlay, converged before the workload starts, serves
/// 104 000 lookups (2600 per cycle for 40 cycles) without losing a single
/// one — on the cycle engine and through the event engine's latency model
/// alike.
#[test]
fn calm_converged_overlay_sustains_1e5_lookups_at_n1024() {
    let workload = TrafficWorkload::new(Phase::new(30, 70)).lookups_per_cycle(2600);
    assert!(workload.total_lookups() >= 100_000);
    for engine in BOTH_ENGINES {
        let label = engine.label();
        let mut builder = ExperimentConfig::builder();
        builder
            .network_size(SIZE)
            .seed(SEED)
            .max_cycles(70)
            .stop_when_perfect(false);
        workload.install(&mut builder);
        let (report, summary) = run(&mut builder, engine);
        assert!(
            report.convergence_cycle().is_some_and(|c| c < 30),
            "[{label}] the overlay must converge before the workload starts"
        );
        assert_eq!(summary.issued, workload.total_lookups(), "[{label}]");
        assert_eq!(summary.delivered, summary.issued, "[{label}]");
        assert_eq!(summary.success_rate, 1.0, "[{label}]");
        assert!(
            window_values(&report).iter().all(|&(_, v)| v == 1.0),
            "[{label}] every measured window must be perfect"
        );
    }
}

/// A churn burst in the middle of the serving window visibly drops per-cycle
/// success (nodes die holding in-flight routes and their stale descriptors
/// linger), and the aging failure detector repairs the service to >= 0.99 by
/// the end of the run.
#[test]
fn churn_burst_dents_the_service_and_aging_repairs_it_at_n1024() {
    for engine in BOTH_ENGINES {
        let label = engine.label();
        let mut builder = ExperimentConfig::builder();
        builder
            .network_size(SIZE)
            .seed(SEED)
            .max_cycles(60)
            .stop_when_perfect(false)
            .descriptor_max_age(Some(8))
            .event(ScenarioEvent::ChurnBurst {
                phase: Phase::new(28, 36),
                rate: 0.02,
            });
        TrafficWorkload::new(Phase::new(20, 60))
            .lookups_per_cycle(200)
            .install(&mut builder);
        let (report, summary) = run(&mut builder, engine);
        let windows = window_values(&report);
        assert!(
            windows
                .iter()
                .filter(|&&(cycle, _)| cycle < 28)
                .all(|&(_, v)| v == 1.0),
            "[{label}] the pre-burst service must be perfect"
        );
        let dip = summary.worst_window_success.expect("windows were measured");
        assert!(
            dip < 0.95,
            "[{label}] the burst must visibly dent the service (worst window {dip:.3})"
        );
        let last = summary.final_window_success.expect("windows were measured");
        assert!(
            last >= 0.99,
            "[{label}] the service must recover to >= 0.99 (final window {last:.3})"
        );
    }
}

/// The eclipse attack as the users see it: 20 % of the network converts to
/// id-spraying node 0 while Zipf-skewed lookups hammer exactly that region.
/// Aging is on, so honest descriptors crowded out by forgeries expire instead
/// of limping along stale — undefended success visibly degrades. Switching on
/// both countermeasures (descriptor verifier + view diversity quota) holds
/// every window at or above 0.99.
#[test]
fn id_spray_guts_undefended_lookups_and_countermeasures_restore_them_at_n1024() {
    for engine in BOTH_ENGINES {
        let label = engine.label();
        let mut summaries = Vec::new();
        for defended in [false, true] {
            let mut builder = ExperimentConfig::builder();
            builder
                .network_size(SIZE)
                .seed(SEED)
                .max_cycles(60)
                .stop_when_perfect(false)
                .event(ScenarioEvent::ByzantineConvert {
                    phase: Phase::new(5, 45),
                    fraction: 0.2,
                    behavior: AdversaryBehavior::IdSpray { target: 0 },
                })
                .sampler(SamplerChoice::Newscast(NewscastParams {
                    view_size: 20,
                    period_millis: 1000,
                    view_diversity_quota: defended.then_some(2),
                    ..NewscastParams::paper_default()
                }))
                .params(BootstrapParams {
                    descriptor_verifier: defended.then_some(VERIFIER_KEY),
                    ..BootstrapParams::paper_default()
                })
                // After `params`, which replaces the parameter set wholesale.
                .descriptor_max_age(Some(8));
            TrafficWorkload::new(Phase::new(10, 60))
                .lookups_per_cycle(200)
                .key_dist(KeyDist::Zipf { exponent: 1.1 })
                .install(&mut builder);
            let (report, summary) = run(&mut builder, engine);
            if defended {
                assert!(
                    summary.success_rate >= 0.99,
                    "[{label}] defended lookups must stay whole ({:.4})",
                    summary.success_rate
                );
                assert!(
                    window_values(&report).iter().all(|&(_, v)| v >= 0.99),
                    "[{label}] every defended window must hold >= 0.99"
                );
            } else {
                assert!(
                    summary.success_rate < 0.95,
                    "[{label}] undefended lookups must degrade ({:.4})",
                    summary.success_rate
                );
                let dip = summary.worst_window_success.expect("windows were measured");
                assert!(
                    dip < 0.9,
                    "[{label}] the attack must gut whole windows (worst {dip:.3})"
                );
            }
            summaries.push(summary);
        }
        assert!(
            summaries[1].success_rate > summaries[0].success_rate,
            "[{label}] the countermeasures must beat the undefended run"
        );
    }
}
